"""Integration tests for live join/leave with version handoff."""

import pytest

from repro.errors import ReproError
from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction
from repro.membership.coordinator import MembershipEvent


def ring_testbed(**overrides):
    defaults = dict(regions=["VA", "OR"], servers_per_cluster=2,
                    placement="ring", fixed_latency_ms=1.0)
    defaults.update(overrides)
    return build_testbed(Scenario(**defaults))


def preload(testbed, count=200):
    client = testbed.make_client("eventual",
                                 home_cluster=testbed.config.cluster_names[0])
    for index in range(count):
        testbed.env.run_until_complete(client.execute(
            Transaction([Operation.write(f"key{index}", index)])))
    testbed.run(100.0)  # let anti-entropy replicate the preload
    return client


class TestJoin:
    def test_join_adds_a_routable_server_after_catchup(self):
        testbed = ring_testbed()
        preload(testbed)
        cluster = testbed.config.clusters[0]
        before = list(cluster.servers)
        record = testbed.membership.scale_out(cluster.name)
        assert cluster.servers == before  # not routable before catch-up
        testbed.run(500.0)
        assert record.done
        assert record.server in cluster.servers
        assert testbed.config.cluster_of_server(record.server) == cluster.name

    def test_joiner_holds_every_moved_key(self):
        testbed = ring_testbed()
        preload(testbed)
        record = testbed.membership.scale_out(testbed.config.cluster_names[0])
        testbed.run(500.0)
        joiner = testbed.servers[record.server]
        assert record.keys_moved > 0
        for key in record.moved_keys:
            assert testbed.config.local_replica_for(
                key, record.cluster) == record.server
            assert joiner.store.data.versions(key), key

    def test_moved_fraction_near_consistent_hash_ideal(self):
        testbed = ring_testbed()
        preload(testbed, count=400)
        record = testbed.membership.scale_out(testbed.config.cluster_names[0])
        testbed.run(500.0)
        fraction = record.keys_moved_fraction
        assert fraction is not None
        # Acceptance bound: within 2x of 1/n for a single join.
        assert fraction <= 2.0 * record.ideal_fraction
        assert fraction >= record.ideal_fraction / 2.0

    def test_writes_during_handoff_reach_the_joiner(self):
        """Writes racing the handoff converge on the joiner (no reads lost).

        Rewrites of every preloaded key are interleaved with the handoff:
        writes accepted by a prior owner before its fetch scan travel in
        the handoff itself, writes accepted after it arrive through the
        flip-time dirty-set repair, and writes after the epoch flip route
        to the joiner directly.  All three paths must converge.
        """
        testbed = ring_testbed()
        client = preload(testbed, count=100)
        cluster_name = testbed.config.cluster_names[0]
        record = testbed.membership.scale_out(cluster_name)
        for index in range(100):
            testbed.env.run_until_complete(client.execute(
                Transaction([Operation.write(f"key{index}", "during-handoff")])))
        testbed.run(200.0)
        assert record.done
        joiner = testbed.servers[record.server]
        for key in record.moved_keys:
            assert joiner.store.data.latest(key).value == "during-handoff", key

    def test_handoff_stats_counted_on_prior_owners(self):
        testbed = ring_testbed()
        preload(testbed)
        cluster = testbed.config.clusters[0]
        owners = list(cluster.servers)
        testbed.membership.scale_out(cluster.name)
        testbed.run(500.0)
        served = sum(testbed.servers[o].handoff.fetches_served for o in owners)
        sent = sum(testbed.servers[o].handoff.versions_sent for o in owners)
        assert served == len(owners)
        assert sent > 0


class TestLeave:
    def test_leave_drains_owned_keys_to_successors(self):
        testbed = ring_testbed(servers_per_cluster=3)
        preload(testbed)
        cluster = testbed.config.clusters[0]
        record = testbed.membership.scale_in(cluster.name)
        testbed.run(1_000.0)
        assert record.done
        assert record.server not in cluster.servers
        assert record.server in testbed.retired
        for key in record.moved_keys:
            owner = testbed.config.local_replica_for(key, cluster.name)
            assert testbed.servers[owner].store.data.versions(key), key

    def test_leave_is_a_noop_on_a_single_server_cluster(self):
        testbed = ring_testbed(regions=["VA"], servers_per_cluster=1)
        assert testbed.membership.scale_in(testbed.config.cluster_names[0]) is None

    def test_scale_in_prefers_the_most_recent_joiner(self):
        testbed = ring_testbed()
        cluster_name = testbed.config.cluster_names[0]
        join = testbed.membership.scale_out(cluster_name)
        testbed.run(500.0)
        leave = testbed.membership.scale_in(cluster_name)
        testbed.run(1_000.0)
        assert leave.server == join.server

    def test_unknown_leave_target_rejected(self):
        testbed = ring_testbed()
        with pytest.raises(ReproError):
            testbed.membership.scale_in(testbed.config.cluster_names[0],
                                        server_name="nope")

    def test_departed_server_no_longer_serves(self):
        testbed = ring_testbed(servers_per_cluster=3)
        preload(testbed)
        cluster_name = testbed.config.cluster_names[0]
        record = testbed.membership.scale_in(cluster_name)
        testbed.run(1_000.0)
        leaver = testbed.retired[record.server]
        assert not leaver.alive
        # Clients keep committing against the shrunk cluster.
        client = testbed.make_client("eventual", home_cluster=cluster_name)
        result = testbed.env.run_until_complete(client.execute(
            Transaction([Operation.write("fresh", 1),
                         Operation.read("fresh")])))
        assert result.committed


class TestSerialization:
    def test_concurrent_events_on_one_cluster_are_deferred(self):
        testbed = ring_testbed()
        preload(testbed)
        cluster = testbed.config.clusters[0]
        first = testbed.membership.scale_out(cluster.name)
        # Fired while the join is still streaming: deferred, not dropped.
        second = testbed.membership.scale_out(cluster.name)
        assert second is None
        testbed.run(2_000.0)
        records = [r for r in testbed.membership.records if r.kind == "join"]
        assert len(records) == 2
        assert all(r.done for r in records)
        assert first.end_ms <= records[1].start_ms
        assert len(cluster.servers) == 4


class TestScenarioTimeline:
    def test_membership_events_schedule_at_build_time(self):
        scenario = Scenario(regions=["VA", "OR"], servers_per_cluster=2,
                            placement="ring", fixed_latency_ms=1.0,
                            membership=[
                                MembershipEvent(at_ms=50.0, kind="join"),
                                MembershipEvent(at_ms=500.0, kind="leave"),
                            ])
        testbed = build_testbed(scenario)
        testbed.run(1_500.0)
        kinds = [r.kind for r in testbed.membership.records]
        assert kinds == ["join", "leave"]
        assert all(r.done for r in testbed.membership.records)
        assert len(testbed.config.clusters[0].servers) == 2

    def test_membership_requires_ring_placement(self):
        scenario = Scenario(regions=["VA"], placement="modulo",
                            membership=[MembershipEvent(at_ms=1.0, kind="join")])
        with pytest.raises(ReproError):
            build_testbed(scenario)

    def test_event_validation(self):
        with pytest.raises(ReproError):
            MembershipEvent(at_ms=1.0, kind="explode")
        with pytest.raises(ReproError):
            MembershipEvent(at_ms=-1.0, kind="join")


class TestReplicationObligations:
    """Partition-deferred pushes must survive membership churn."""

    def test_deferred_pushes_retarget_after_a_join(self):
        """A write deferred toward a partitioned peer still reaches both the
        joiner (via the flip repair) and, after the heal, the remote owner
        (the owed set is recomputed from the live config, not frozen)."""
        testbed = ring_testbed()
        client = preload(testbed, count=100)
        testbed.partition_regions([["VA"], ["OR"]])
        for index in range(100):
            testbed.env.run_until_complete(client.execute(
                Transaction([Operation.write(f"key{index}", "partition-era")])))
        record = testbed.membership.scale_out(testbed.config.cluster_names[0])
        testbed.run(500.0)
        assert record.done
        joiner = testbed.servers[record.server]
        for key in record.moved_keys:
            assert joiner.store.data.latest(key).value == "partition-era", key
        testbed.heal()
        testbed.run(500.0)
        remote = testbed.config.cluster_names[1]
        for index in range(100):
            key = f"key{index}"
            owner = testbed.servers[
                testbed.config.local_replica_for(key, remote)]
            assert owner.store.data.latest(key).value == "partition-era", key

    def test_leaver_obligations_survive_decommission_under_partition(self):
        """Writes a leaver could not replicate across a partition are handed
        to its successors, not destroyed with its anti-entropy service."""
        testbed = ring_testbed(servers_per_cluster=3)
        client = preload(testbed, count=100)
        testbed.partition_regions([["VA"], ["OR"]])
        for index in range(100):
            testbed.env.run_until_complete(client.execute(
                Transaction([Operation.write(f"key{index}", "partition-era")])))
        record = testbed.membership.scale_in(testbed.config.cluster_names[0])
        testbed.run(2_000.0)
        assert record.done and record.server in testbed.retired
        testbed.heal()
        testbed.run(500.0)
        remote = testbed.config.cluster_names[1]
        for index in range(100):
            key = f"key{index}"
            owner = testbed.servers[
                testbed.config.local_replica_for(key, remote)]
            assert owner.store.data.latest(key).value == "partition-era", key


class TestFailureHandling:
    def test_membership_on_modulo_placement_fails_loud_at_the_caller(self):
        testbed = build_testbed(Scenario(regions=["VA"], servers_per_cluster=2,
                                         fixed_latency_ms=1.0))
        with pytest.raises(ReproError):
            testbed.membership.scale_out(testbed.config.cluster_names[0])
        with pytest.raises(ReproError):
            testbed.membership.scale_in(testbed.config.cluster_names[0])
        assert testbed.membership.records == []

    def test_join_against_a_crashed_owner_aborts_cleanly(self):
        """A dead handoff peer must not wedge the cluster's rebalancing."""
        testbed = ring_testbed()
        preload(testbed, count=50)
        cluster = testbed.config.clusters[0]
        testbed.servers[cluster.servers[0]].crash()
        record = testbed.membership.scale_out(cluster.name)
        testbed.run(80_000.0)  # past the retry budget
        assert not record.done
        assert record.error is not None and "unreachable" in record.error
        # The zombie joiner never became routable and its name is retired.
        assert record.server not in cluster.servers
        assert record.server in testbed.retired
        # The cluster is free again: a later event proceeds once the peer
        # recovers.
        testbed.servers[cluster.servers[0]].recover()
        retry = testbed.membership.scale_out(cluster.name)
        testbed.run(1_000.0)
        assert retry.done

    def test_straggler_write_during_leave_survives_on_the_successor(self):
        """A write served in the leaver's final moments is not lost."""
        testbed = ring_testbed(servers_per_cluster=3)
        preload(testbed, count=60)
        cluster = testbed.config.clusters[0]
        leaver_name = cluster.servers[-1]  # the default scale-in target
        key = next(k for k in (f"key{i}" for i in range(60))
                   if cluster.owner_for(k) == leaver_name)
        record = testbed.membership.scale_in(cluster.name)
        leaver = testbed.servers[record.server]
        assert record.server == leaver_name

        def straggle():
            # Fired mid-leave (inside the post-flip lame-duck window):
            # install + dirty-mark on the leaver directly, emulating a
            # request that raced the drain.
            from repro.storage.records import Timestamp, Version

            straggler = Version(key=key, value="straggler",
                                timestamp=Timestamp(sequence=10_000,
                                                    client_id=99))
            leaver.store.put(straggler)
            leaver.anti_entropy.mark_dirty(straggler)

        testbed.env.schedule(100.0, straggle)
        testbed.run(3_000.0)
        assert record.done
        owner = testbed.servers[
            testbed.config.local_replica_for(key, cluster.name)]
        assert owner.store.data.latest(key).value == "straggler"
