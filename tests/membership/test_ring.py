"""Unit tests for the consistent-hash ring."""

import pytest

from repro.cluster.partitioner import HashPartitioner
from repro.errors import ReproError
from repro.membership.ring import ConsistentHashRing

KEYS = [f"user{i}" for i in range(2000)]


class TestConstruction:
    def test_requires_owners(self):
        with pytest.raises(ReproError):
            ConsistentHashRing([])

    def test_rejects_duplicate_owners(self):
        with pytest.raises(ReproError):
            ConsistentHashRing(["a", "a"])

    def test_rejects_zero_virtual_nodes(self):
        with pytest.raises(ReproError):
            ConsistentHashRing(["a"], virtual_nodes=0)

    def test_single_owner_gets_everything(self):
        ring = ConsistentHashRing(["only"])
        assert all(ring.owner_for(k) == "only" for k in KEYS[:50])


class TestPlacement:
    def test_owner_is_member(self):
        ring = ConsistentHashRing(["s0", "s1", "s2"])
        for key in KEYS[:200]:
            assert ring.owner_for(key) in ring.owners

    def test_same_surface_as_hash_partitioner(self):
        """The ring answers the exact query surface Cluster routes through."""
        for surface in ("owner_for", "owners", "keys_per_owner", "key_hash"):
            assert hasattr(ConsistentHashRing(["a"]), surface)
            assert hasattr(HashPartitioner(["a"]), surface)

    def test_key_hash_matches_modulo_partitioner(self):
        # Both placements share one stable SHA-1 hash (and its memo cache).
        for key in KEYS[:20]:
            assert (ConsistentHashRing.key_hash(key)
                    == HashPartitioner.key_hash(key))

    def test_distribution_is_roughly_balanced(self):
        ring = ConsistentHashRing([f"s{i}" for i in range(4)])
        counts = ring.keys_per_owner(KEYS)
        expected = len(KEYS) / 4
        assert max(counts.values()) < 2 * expected
        assert min(counts.values()) > expected / 2


class TestMembership:
    def test_with_owner_moves_only_to_the_new_node(self):
        before = ConsistentHashRing(["s0", "s1", "s2"])
        after = before.with_owner("s3")
        for key in KEYS:
            if before.owner_for(key) != after.owner_for(key):
                assert after.owner_for(key) == "s3"

    def test_without_owner_moves_only_from_the_removed_node(self):
        before = ConsistentHashRing(["s0", "s1", "s2"])
        after = before.without_owner("s1")
        for key in KEYS:
            if before.owner_for(key) == "s1":
                assert after.owner_for(key) != "s1"
            else:
                assert after.owner_for(key) == before.owner_for(key)

    def test_with_owner_rejects_existing(self):
        with pytest.raises(ReproError):
            ConsistentHashRing(["a"]).with_owner("a")

    def test_without_owner_rejects_unknown_and_last(self):
        ring = ConsistentHashRing(["a", "b"])
        with pytest.raises(ReproError):
            ring.without_owner("zz")
        with pytest.raises(ReproError):
            ring.without_owner("a").without_owner("b")

    def test_moved_fraction(self):
        before = ConsistentHashRing(["s0", "s1"])
        assert before.moved_fraction(before, KEYS) == 0.0
        after = before.with_owner("s2")
        fraction = before.moved_fraction(after, KEYS)
        assert 0.0 < fraction < 1.0
        assert before.moved_fraction(after, []) == 0.0
