"""Unit tests for the LSM store and its cost model."""

import pytest

from repro.storage.lsm import LSMCostModel, LSMStore
from repro.storage.records import Timestamp, Version


def v(key, value, seq):
    return Version(key=key, value=value, timestamp=Timestamp(seq, 1))


class TestLSMStore:
    def test_put_then_get(self):
        store = LSMStore()
        store.put(v("x", 1, 1))
        version, cost = store.get_latest("x")
        assert version.value == 1
        assert cost > 0

    def test_get_at_or_before(self):
        store = LSMStore()
        store.put(v("x", 1, 1))
        store.put(v("x", 2, 5))
        version, _cost = store.get_at_or_before("x", Timestamp(3, 9))
        assert version.value == 1

    def test_put_cost_is_positive_and_counts(self):
        store = LSMStore()
        cost = store.put(v("x", 1, 1))
        assert cost >= store.cost.put_ms
        assert store.stats.puts == 1
        assert store.stats.bytes_written > 0

    def test_memtable_flush_triggers_on_size(self):
        cost_model = LSMCostModel(memtable_bytes=4096, flush_ms=5.0)
        store = LSMStore(cost_model)
        # Each put writes ~1 KB + metadata; four puts should force a flush.
        total = sum(store.put(v(f"k{i}", i, i), value_bytes=1024) for i in range(4))
        assert store.stats.flushes >= 1
        assert total > 4 * cost_model.put_ms

    def test_compaction_triggered_after_enough_sstables(self):
        cost_model = LSMCostModel(memtable_bytes=1024, compaction_trigger=2)
        store = LSMStore(cost_model)
        for i in range(8):
            store.put(v(f"k{i}", i, i), value_bytes=1024)
        assert store.stats.compactions >= 1
        assert store.sstable_count < store.stats.flushes

    def test_read_cost_grows_with_sstables(self):
        cost_model = LSMCostModel(memtable_bytes=1024, compaction_trigger=100)
        store = LSMStore(cost_model)
        _, cold_cost = store.get_latest("x")
        for i in range(6):
            store.put(v(f"k{i}", i, i), value_bytes=1024)
        _, warm_cost = store.get_latest("x")
        assert warm_cost > cold_cost

    def test_scan_returns_matches(self):
        store = LSMStore()
        store.put(v("a", 5, 1))
        store.put(v("b", 50, 2))
        matches, cost = store.scan(lambda key, version: version.value >= 10)
        assert [m.key for m in matches] == ["b"]
        assert cost > 0

    def test_contains(self):
        store = LSMStore()
        assert "x" not in store
        store.put(v("x", 1, 1))
        assert "x" in store

    def test_mav_metadata_increases_bytes(self):
        store = LSMStore()
        plain = v("x", 1, 1)
        heavy = Version("x", 1, Timestamp(2, 1),
                        siblings=frozenset(f"k{i}" for i in range(64)))
        store.put(plain)
        bytes_after_plain = store.stats.bytes_written
        store.put(heavy)
        assert store.stats.bytes_written - bytes_after_plain > bytes_after_plain
