"""Unit tests for the write-ahead log."""

from repro.storage.wal import WriteAheadLog


class TestWriteAheadLog:
    def test_append_assigns_lsns(self):
        wal = WriteAheadLog()
        wal.append("put", "x", {"v": 1})
        wal.append("put", "y", {"v": 2})
        assert wal.last_lsn == 1
        assert len(wal) == 2

    def test_sync_cost_includes_fsync_and_bytes(self):
        wal = WriteAheadLog(fsync_ms=1.0, bytes_per_ms=1000.0)
        cost = wal.append("put", "x", None, size_bytes=500, sync=True)
        assert cost == 1.0 + 0.5

    def test_async_append_is_cheaper(self):
        wal = WriteAheadLog(fsync_ms=1.0, bytes_per_ms=1000.0)
        async_cost = wal.append("put", "x", None, size_bytes=500, sync=False)
        assert async_cost == 0.5
        # The deferred sync later pays the fsync plus buffered bytes.
        sync_cost = wal.sync()
        assert sync_cost == 1.0 + 0.5

    def test_sync_resets_buffered_bytes(self):
        wal = WriteAheadLog(fsync_ms=1.0, bytes_per_ms=1000.0)
        wal.append("put", "x", None, size_bytes=500, sync=True)
        assert wal.sync() == 1.0  # nothing buffered -> fsync only

    def test_truncate_drops_prefix(self):
        wal = WriteAheadLog()
        for index in range(5):
            wal.append("put", f"k{index}", None)
        dropped = wal.truncate(up_to_lsn=3)
        assert dropped == 3
        assert [record.lsn for record in wal.replay()] == [3, 4]

    def test_replay_preserves_order_and_payload(self):
        wal = WriteAheadLog()
        wal.append("put", "x", {"v": 1})
        wal.append("commit", None, {"txn": 7})
        records = list(wal.replay())
        assert [r.kind for r in records] == ["put", "commit"]
        assert records[1].payload == {"txn": 7}

    def test_empty_log(self):
        wal = WriteAheadLog()
        assert wal.last_lsn == -1
        assert list(wal.replay()) == []
