"""Regression tests: replica memory stays bounded over long write streams.

Servers used to retain every version of every key forever — a leak that
only showed up in long chaos runs.  ``Scenario.keep_versions`` now bounds
per-key retention on every server's store, and the WAL caps its record
list, so sustained write traffic cannot grow replica memory without bound.
"""

from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction
from repro.storage.kvstore import VersionedStore
from repro.storage.records import Timestamp, Version


def _version(key: str, sequence: int) -> Version:
    return Version(key=key, value=sequence,
                   timestamp=Timestamp(sequence=sequence, client_id=1))


class TestKeepVersionsBound:
    def test_versioned_store_honours_bound_on_append_fast_path(self):
        store = VersionedStore(keep_versions=8)
        for sequence in range(100):
            assert store.install(_version("hot", sequence))
        assert len(store.versions("hot")) == 8
        # The newest versions survive, oldest are trimmed.
        assert [v.value for v in store.versions("hot")] == list(range(92, 100))

    def test_versioned_store_honours_bound_on_out_of_order_installs(self):
        store = VersionedStore(keep_versions=4)
        for sequence in (10, 2, 7, 5, 9, 1, 8, 3):
            store.install(_version("k", sequence))
        values = [v.value for v in store.versions("k")]
        assert len(values) == 4
        assert values == sorted(values)

    def test_long_run_keeps_server_version_counts_bounded(self):
        """A hot-key write stream through a real testbed stays bounded."""
        testbed = build_testbed(Scenario(regions=["VA"], servers_per_cluster=2,
                                         fixed_latency_ms=1.0,
                                         keep_versions=16))
        client = testbed.make_client("eventual")
        for index in range(200):
            result = testbed.env.run_until_complete(client.execute(
                Transaction([Operation.write("hot-key", index)])))
            assert result.committed
        testbed.run(500.0)  # let anti-entropy finish replicating
        for server in testbed.server_list():
            for key in server.store.data.keys():
                retained = len(server.store.data.versions(key))
                assert retained <= 16, (server.name, key, retained)

    def test_server_wal_record_list_is_capped(self):
        testbed = build_testbed(Scenario(regions=["VA"], servers_per_cluster=1,
                                         fixed_latency_ms=1.0))
        client = testbed.make_client("eventual")
        for index in range(60):
            testbed.env.run_until_complete(client.execute(
                Transaction([Operation.write(f"k{index % 5}", index)])))
        for server in testbed.server_list():
            assert len(server.wal) <= server.wal.max_records
            # LSNs keep advancing even though old records are dropped.
            assert server.wal.last_lsn >= len(server.wal) - 1
