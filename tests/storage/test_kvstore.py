"""Unit tests for the multi-versioned key-value store."""

import pytest

from repro.errors import StorageError
from repro.storage.kvstore import VersionedStore
from repro.storage.records import NULL_TIMESTAMP, Timestamp, Version


def v(key, value, seq, client=1, txn=None):
    return Version(key=key, value=value, timestamp=Timestamp(seq, client), txn_id=txn)


class TestVersionedStore:
    def test_latest_of_missing_key_is_initial(self):
        store = VersionedStore()
        version = store.latest("x")
        assert version.value is None and version.timestamp == NULL_TIMESTAMP

    def test_install_and_read_latest(self):
        store = VersionedStore()
        store.install(v("x", 1, 1))
        store.install(v("x", 2, 2))
        assert store.latest("x").value == 2

    def test_out_of_order_install_keeps_timestamp_order(self):
        store = VersionedStore()
        store.install(v("x", 2, 2))
        store.install(v("x", 1, 1))
        assert store.latest("x").value == 2
        assert [version.value for version in store.versions("x")] == [1, 2]

    def test_duplicate_timestamp_rejected(self):
        store = VersionedStore()
        assert store.install(v("x", 1, 1)) is True
        assert store.install(v("x", 99, 1)) is False
        assert store.latest("x").value == 1

    def test_latest_at_or_before(self):
        store = VersionedStore()
        for seq in (1, 3, 5):
            store.install(v("x", seq, seq))
        assert store.latest_at_or_before("x", Timestamp(4, 9)).value == 3
        assert store.latest_at_or_before("x", Timestamp(5, 1)).value == 5
        assert store.latest_at_or_before("x", Timestamp(0, 0)) is None
        assert store.latest_at_or_before("missing", Timestamp(9, 9)) is None

    def test_exact_lookup(self):
        store = VersionedStore()
        store.install(v("x", 1, 1))
        assert store.exact("x", Timestamp(1, 1)).value == 1
        assert store.exact("x", Timestamp(2, 1)) is None

    def test_keep_versions_bound(self):
        store = VersionedStore(keep_versions=2)
        for seq in range(1, 6):
            store.install(v("x", seq, seq))
        assert [version.value for version in store.versions("x")] == [4, 5]

    def test_keep_versions_validation(self):
        with pytest.raises(StorageError):
            VersionedStore(keep_versions=0)

    def test_scan_latest_versions(self):
        store = VersionedStore()
        store.install(v("a", 10, 1))
        store.install(v("b", 20, 1))
        store.install(v("b", 25, 2))
        matches = store.scan(lambda key, version: version.value > 15)
        assert {m.key for m in matches} == {"b"}
        assert matches[0].value == 25

    def test_scan_skips_tombstones(self):
        store = VersionedStore()
        store.install(v("a", 10, 1))
        store.install(Version("a", None, Timestamp(2, 1), tombstone=True))
        assert store.scan(lambda key, version: True) == []

    def test_garbage_collect_keeps_read_point(self):
        store = VersionedStore()
        for seq in range(1, 6):
            store.install(v("x", seq, seq))
        removed = store.garbage_collect(Timestamp(3, 9))
        assert removed == 2  # versions 1 and 2 dropped; 3 kept for reads at the mark
        assert [version.value for version in store.versions("x")] == [3, 4, 5]
        assert store.latest_at_or_before("x", Timestamp(3, 9)).value == 3

    def test_contains_and_len(self):
        store = VersionedStore()
        assert "x" not in store and len(store) == 0
        store.install(v("x", 1, 1))
        assert "x" in store and len(store) == 1
        assert list(store.keys()) == ["x"]
