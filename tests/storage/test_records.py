"""Unit tests for versioned records and timestamps."""

import pytest

from repro.storage.records import (
    NULL_TIMESTAMP,
    Timestamp,
    Version,
    initial_version,
    last_writer_wins,
)


class TestTimestamp:
    def test_ordering_by_sequence_then_client(self):
        assert Timestamp(1, 5) < Timestamp(2, 1)
        assert Timestamp(2, 1) < Timestamp(2, 2)
        assert not Timestamp(3, 0) < Timestamp(2, 9)

    def test_equality_and_hash(self):
        assert Timestamp(1, 1) == Timestamp(1, 1)
        assert len({Timestamp(1, 1), Timestamp(1, 1), Timestamp(1, 2)}) == 2

    def test_null_timestamp_is_smallest(self):
        assert NULL_TIMESTAMP < Timestamp(0, 0)
        assert NULL_TIMESTAMP < Timestamp(1, 1)

    def test_total_ordering_helpers(self):
        assert Timestamp(2, 2) >= Timestamp(2, 1)
        assert Timestamp(2, 2) > Timestamp(1, 9)
        assert str(Timestamp(3, 4)) == "3.4"


class TestVersion:
    def test_initial_version(self):
        version = initial_version("x")
        assert version.value is None
        assert version.timestamp == NULL_TIMESTAMP
        assert not version.tombstone

    def test_with_siblings(self):
        version = Version("x", 1, Timestamp(1, 1), txn_id=7)
        tagged = version.with_siblings({"x", "y", "z"})
        assert tagged.siblings == frozenset({"x", "y", "z"})
        assert tagged.value == 1 and tagged.txn_id == 7

    def test_metadata_bytes_grow_with_siblings(self):
        single = Version("x", 1, Timestamp(1, 1), siblings=frozenset({"x"}))
        many = Version("x", 1, Timestamp(1, 1),
                       siblings=frozenset(f"k{i}" for i in range(128)))
        assert single.metadata_bytes == 34
        assert many.metadata_bytes > 1800  # ~1.9 KB at 128 ops, as in the paper

    def test_versions_are_immutable(self):
        version = Version("x", 1, Timestamp(1, 1))
        with pytest.raises(AttributeError):
            version.value = 2


class TestLastWriterWins:
    def test_later_timestamp_wins(self):
        older = Version("x", "old", Timestamp(1, 1))
        newer = Version("x", "new", Timestamp(2, 1))
        assert last_writer_wins(older, newer) is newer
        assert last_writer_wins(newer, older) is newer

    def test_client_id_breaks_ties(self):
        a = Version("x", "a", Timestamp(1, 1))
        b = Version("x", "b", Timestamp(1, 2))
        assert last_writer_wins(a, b) is b

    def test_none_loses(self):
        version = Version("x", 1, Timestamp(1, 1))
        assert last_writer_wins(None, version) is version
        assert last_writer_wins(version, None) is version
        assert last_writer_wins(None, None) is None
