"""Unit tests for transactions, operations, and results."""

import pytest

from repro.errors import WorkloadError
from repro.hat.transaction import (
    Operation,
    ReadObservation,
    Transaction,
    TransactionResult,
    make_transaction,
    observed_values,
    resolve_derived,
)
from repro.storage.records import Timestamp, Version


class TestOperation:
    def test_read_constructor(self):
        op = Operation.read("x")
        assert op.is_read and not op.is_write and op.key == "x"

    def test_write_constructor(self):
        op = Operation.write("x", 42)
        assert op.is_write and op.value == 42

    def test_scan_constructor(self):
        op = Operation.scan(lambda key, value: True, name="all")
        assert op.is_scan and op.predicate_name == "all"

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError):
            Operation(kind="upsert", key="x")

    def test_read_requires_key(self):
        with pytest.raises(WorkloadError):
            Operation(kind="read")

    def test_scan_requires_predicate(self):
        with pytest.raises(WorkloadError):
            Operation(kind="scan")


class TestTransaction:
    def test_requires_operations(self):
        with pytest.raises(WorkloadError):
            Transaction(operations=[])

    def test_unique_ids(self):
        a = make_transaction([Operation.read("x")])
        b = make_transaction([Operation.read("x")])
        assert a.txn_id != b.txn_id

    def test_read_and_write_keys(self):
        txn = make_transaction([
            Operation.write("a", 1),
            Operation.read("b"),
            Operation.write("c", 3),
            Operation.read("a"),
        ])
        assert txn.read_keys == ["b", "a"]
        assert txn.write_keys == ["a", "c"]
        assert txn.accessed_keys() == ["a", "b", "c"]

    def test_write_set_keeps_last_value(self):
        txn = make_transaction([
            Operation.write("x", 1),
            Operation.write("x", 2),
        ])
        assert txn.write_set == {"x": 2}


class TestDerivedWrites:
    def _result_with_read(self, key, value):
        result = TransactionResult(txn_id=1, committed=False, protocol="eventual")
        result.reads.append(ReadObservation(
            key=key, version=Version(key, value, Timestamp(1, 1))))
        return result

    def test_derived_write_constructor(self):
        op = Operation.derived_write(lambda reads: ("k", 1))
        assert op.is_write and op.is_derived

    def test_derive_only_allowed_on_writes(self):
        with pytest.raises(WorkloadError, match="derived"):
            Operation(kind="read", key="x", derive=lambda reads: ("x", 1))

    def test_resolution_uses_reads_and_mutates_in_place(self):
        op = Operation.derived_write(
            lambda reads: ("counter", reads["counter"] + 1), key="counter")
        txn = make_transaction([Operation.read("counter"), op])
        result = self._result_with_read("counter", 41)
        resolved = resolve_derived(txn, op, result)
        assert resolved.value == 42
        assert not resolved.is_derived
        assert txn.operations[1] is resolved
        assert txn.write_set == {"counter": 42}

    def test_resolution_can_derive_the_key(self):
        op = Operation.derived_write(
            lambda reads: (f"order:{reads['next']}", "pending"), key="order:?")
        txn = make_transaction([Operation.read("next"), op])
        resolved = resolve_derived(txn, op, self._result_with_read("next", 7))
        assert resolved.key == "order:7"

    def test_plain_ops_pass_through(self):
        op = Operation.write("x", 1)
        txn = make_transaction([op])
        result = TransactionResult(txn_id=1, committed=False, protocol="eventual")
        assert resolve_derived(txn, op, result) is op

    def test_observed_values_keeps_last_read(self):
        result = self._result_with_read("x", "old")
        result.reads.append(ReadObservation(
            key="x", version=Version("x", "new", Timestamp(2, 1))))
        assert observed_values(result) == {"x": "new"}


class TestTransactionResult:
    def test_latency(self):
        result = TransactionResult(txn_id=1, committed=True, protocol="eventual",
                                   start_ms=10.0, end_ms=25.5)
        assert result.latency_ms == pytest.approx(15.5)

    def test_value_read_returns_latest_observation(self):
        result = TransactionResult(txn_id=1, committed=True, protocol="eventual")
        result.reads.append(ReadObservation(
            key="x", version=Version("x", "first", Timestamp(1, 1))))
        result.reads.append(ReadObservation(
            key="x", version=Version("x", "second", Timestamp(2, 1))))
        assert result.value_read("x") == "second"
        assert result.value_read("missing") is None
