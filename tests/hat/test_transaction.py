"""Unit tests for transactions, operations, and results."""

import pytest

from repro.errors import WorkloadError
from repro.hat.transaction import (
    Operation,
    ReadObservation,
    Transaction,
    TransactionResult,
    make_transaction,
)
from repro.storage.records import Timestamp, Version


class TestOperation:
    def test_read_constructor(self):
        op = Operation.read("x")
        assert op.is_read and not op.is_write and op.key == "x"

    def test_write_constructor(self):
        op = Operation.write("x", 42)
        assert op.is_write and op.value == 42

    def test_scan_constructor(self):
        op = Operation.scan(lambda key, value: True, name="all")
        assert op.is_scan and op.predicate_name == "all"

    def test_unknown_kind_rejected(self):
        with pytest.raises(WorkloadError):
            Operation(kind="upsert", key="x")

    def test_read_requires_key(self):
        with pytest.raises(WorkloadError):
            Operation(kind="read")

    def test_scan_requires_predicate(self):
        with pytest.raises(WorkloadError):
            Operation(kind="scan")


class TestTransaction:
    def test_requires_operations(self):
        with pytest.raises(WorkloadError):
            Transaction(operations=[])

    def test_unique_ids(self):
        a = make_transaction([Operation.read("x")])
        b = make_transaction([Operation.read("x")])
        assert a.txn_id != b.txn_id

    def test_read_and_write_keys(self):
        txn = make_transaction([
            Operation.write("a", 1),
            Operation.read("b"),
            Operation.write("c", 3),
            Operation.read("a"),
        ])
        assert txn.read_keys == ["b", "a"]
        assert txn.write_keys == ["a", "c"]
        assert txn.accessed_keys() == ["a", "b", "c"]

    def test_write_set_keeps_last_value(self):
        txn = make_transaction([
            Operation.write("x", 1),
            Operation.write("x", 2),
        ])
        assert txn.write_set == {"x": 2}


class TestTransactionResult:
    def test_latency(self):
        result = TransactionResult(txn_id=1, committed=True, protocol="eventual",
                                   start_ms=10.0, end_ms=25.5)
        assert result.latency_ms == pytest.approx(15.5)

    def test_value_read_returns_latest_observation(self):
        result = TransactionResult(txn_id=1, committed=True, protocol="eventual")
        result.reads.append(ReadObservation(
            key="x", version=Version("x", "first", Timestamp(1, 1))))
        result.reads.append(ReadObservation(
            key="x", version=Version("x", "second", Timestamp(2, 1))))
        assert result.value_read("x") == "second"
        assert result.value_read("missing") is None
