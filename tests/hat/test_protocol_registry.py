"""Tests for the protocol registry: spec parsing, stacking, classification."""

import pytest

from repro.errors import ReproError
from repro.hat.layers import SessionLayer
from repro.hat.protocols import (
    ALL_PROTOCOLS,
    CAUSAL_SET,
    COMPOSITE_PROTOCOLS,
    EVENTUAL,
    MAV,
    PRAM_SET,
    READ_COMMITTED,
    TWO_PHASE_LOCKING,
    ProtocolSpecError,
    cross_check_with_taxonomy,
    parse_spec,
    protocol_info,
)
from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction


class TestSpecParsing:
    @pytest.mark.parametrize("spec", [
        "eventual", "read-committed", "mav", "causal", "mav+causal",
        "mav+wfr", "mav+mr+wfr", "read-committed+ryw", "read-committed+ci+pram",
        "mr+wfr", "ci",
    ])
    def test_canonical_names_round_trip(self, spec):
        parsed = parse_spec(spec)
        assert parse_spec(parsed.name) == parsed
        # Canonicalising is idempotent.
        assert parse_spec(parsed.name).name == parsed.name

    def test_aliases_normalise(self):
        assert parse_spec("rc").base == READ_COMMITTED
        assert parse_spec("ru").base == EVENTUAL
        assert parse_spec("2pl").base == TWO_PHASE_LOCKING
        assert parse_spec("mav+cut-isolation").cut_isolation

    def test_layer_order_is_canonical(self):
        assert parse_spec("mav+wfr+mr").name == "mav+mr+wfr"
        assert parse_spec("wfr+mav+mr").name == "mav+mr+wfr"

    def test_causal_expands_to_all_four_session_guarantees(self):
        spec = parse_spec("causal")
        assert spec.base == EVENTUAL
        assert spec.session == CAUSAL_SET == frozenset({"mr", "mw", "wfr", "ryw"})
        assert spec.session_layers == ("mr", "mw", "wfr", "ryw")

    def test_pram_bundle(self):
        spec = parse_spec("mav+pram")
        assert spec.base == MAV
        assert spec.session == PRAM_SET == frozenset({"mr", "mw", "ryw"})

    def test_bundles_compress_in_canonical_names(self):
        assert parse_spec("mr+mw+wfr+ryw").name == "causal"
        assert parse_spec("mav+mr+mw+wfr+ryw").name == "mav+causal"
        assert parse_spec("mav+pram+wfr").name == "mav+causal"
        assert parse_spec("eventual+mr+mw+ryw").name == "pram"

    def test_base_defaults_to_eventual(self):
        assert parse_spec("mr+wfr").base == EVENTUAL


class TestSpecRejection:
    def test_unknown_token(self):
        with pytest.raises(ProtocolSpecError):
            parse_spec("read-committed+hope")

    def test_spec_error_is_both_repro_and_key_error(self):
        with pytest.raises(ReproError):
            parse_spec("bogus")
        with pytest.raises(KeyError):
            parse_spec("bogus")

    @pytest.mark.parametrize("spec", [
        "master+ryw", "quorum+mr", "two-phase-locking+causal", "master+ci",
    ])
    def test_layers_rejected_on_coordinated_bases(self, spec):
        """Session layers cannot stack on bases that are not sticky available."""
        with pytest.raises(ProtocolSpecError):
            parse_spec(spec)

    def test_two_bases_rejected(self):
        with pytest.raises(ProtocolSpecError):
            parse_spec("mav+read-committed")

    def test_empty_specs_rejected(self):
        for spec in ("", "  ", "mav++mr"):
            with pytest.raises(ProtocolSpecError):
                parse_spec(spec)

    def test_testbed_rejects_invalid_specs_as_repro_error(self):
        testbed = build_testbed(Scenario(regions=["VA"], servers_per_cluster=1))
        with pytest.raises(ReproError):
            testbed.make_client("master+ryw")


class TestClassification:
    def test_causal_is_sticky_available_only(self):
        info = protocol_info("causal")
        assert info.sticky_available and not info.highly_available
        assert "Causal" in info.models and "RYW" in info.models

    def test_mav_causal_is_sticky_available_only(self):
        info = protocol_info("mav+causal")
        assert info.sticky_available and not info.highly_available
        assert "MAV" in info.models and "Causal" in info.models

    def test_ha_session_guarantees_stay_highly_available(self):
        """MR, MW, and WFR stack without giving up full high availability."""
        info = protocol_info("mav+mr+wfr")
        assert info.highly_available and info.sticky_available

    def test_ryw_makes_any_stack_sticky(self):
        info = protocol_info("read-committed+ryw")
        assert info.sticky_available and not info.highly_available

    def test_composites_are_first_class(self):
        for name in COMPOSITE_PROTOCOLS:
            assert name in ALL_PROTOCOLS
            assert protocol_info(name).name == name

    def test_cross_check_against_taxonomy_and_lattice(self):
        assert cross_check_with_taxonomy() == []

    def test_derived_specs_are_classified_on_the_fly(self):
        info = protocol_info("mav+wfr+mr")
        assert info.base == MAV
        assert info.layers == ("mr", "wfr")


class TestStackedClients:
    def test_composite_client_executes_transactions(self):
        testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))
        client = testbed.make_client("mav+wfr+mr")
        assert client.protocol_name == "mav+mr+wfr"
        result = testbed.env.run_until_complete(client.execute(
            Transaction([Operation.write("x", 1), Operation.read("x")])
        ))
        assert result.committed and result.value_read("x") == 1
        assert result.protocol == "mav+mr+wfr"

    def test_session_layers_share_one_state(self):
        testbed = build_testbed(Scenario(regions=["VA"], servers_per_cluster=1))
        client = testbed.make_client("causal")
        session_layers = [layer for layer in client.layers
                          if isinstance(layer, SessionLayer)]
        assert len(session_layers) == 4
        assert all(layer.state is client.session for layer in session_layers)
