"""Regression tests: client timestamps follow the Lamport receive rule.

A client that reads a version must never install a later write with a
lower timestamp — otherwise last-writer-wins silently discards the write.
The rule has two halves:

* **witness** — every observed read advances the client's sequence
  counter past the observed timestamp;
* **lazy/refreshed draw** — the transaction's write timestamp is drawn
  (or redrawn) at the moment a write installs, so reads that happen
  before it — including reads *after* an early draw forced by a
  buffered-write echo — are always reflected.

The scenarios below preload the store through a separate loader client
(whose sequence counter runs ahead), then check that a fresh client's
writes still win LWW over what it read.
"""

import pytest

from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction
from repro.workloads.base import WorkloadFactory, run_preload


class _Preload(WorkloadFactory):
    """Pump the loader's sequence counter with many small transactions."""

    settle_ms = 300.0

    def build(self, seed, session_id):
        raise AssertionError("preload only")

    def initial_transactions(self):
        transactions = [Transaction([Operation.write(f"pad{i}", i)])
                        for i in range(20)]
        transactions.append(Transaction([Operation.write("x", "old"),
                                         Operation.write("y", "old")]))
        return transactions


def preloaded_testbed():
    testbed = build_testbed(Scenario(regions=["VA"], servers_per_cluster=2))
    run_preload(testbed, _Preload())
    return testbed


def execute(testbed, client, operations):
    return testbed.env.run_until_complete(
        client.execute(Transaction(list(operations))))


@pytest.mark.parametrize("protocol", ["eventual", "read-committed", "mav",
                                      "causal", "quorum"])
def test_first_write_after_a_read_wins_lww_over_the_preload(protocol):
    """A fresh client's very first transaction reads a preloaded version
    (high sequence) and then overwrites it; the write must stick."""
    testbed = preloaded_testbed()
    client = testbed.make_client(protocol)
    result = execute(testbed, client, [
        Operation.read("x"),
        Operation.derived_write(lambda reads: ("x", f"{reads['x']}+new")),
    ])
    assert result.committed
    reader = testbed.make_client(protocol)
    check = execute(testbed, reader, [Operation.read("x")])
    assert check.value_read("x") == "old+new"


@pytest.mark.parametrize("protocol", ["read-committed", "mav"])
def test_buffered_echo_does_not_freeze_a_stale_timestamp(protocol):
    """[write x, read x, read y]: the read of the client's own buffered
    write forces an early timestamp draw; the later read of y witnesses
    the preload's higher sequence, and the flush must redraw — otherwise
    the committed write of x loses LWW and becomes invisible."""
    testbed = preloaded_testbed()
    client = testbed.make_client(protocol)
    result = execute(testbed, client, [
        Operation.write("x", "new"),
        Operation.read("x"),   # served from the write buffer (early draw)
        Operation.read("y"),   # witnesses the preload's higher sequence
    ])
    assert result.committed
    assert result.value_read("x") == "new"
    reader = testbed.make_client(protocol)
    check = execute(testbed, reader, [Operation.read("x")])
    assert check.value_read("x") == "new"


def test_direct_writes_interleaved_with_reads_stay_visible():
    """eventual applies writes immediately: a write after a later-witnessing
    read must refresh its timestamp rather than reuse the first draw."""
    testbed = preloaded_testbed()
    client = testbed.make_client("eventual")
    result = execute(testbed, client, [
        Operation.read("pad0"),            # low-ish witness
        Operation.write("scratch", 1),     # first draw
        Operation.read("y"),               # higher witness
        Operation.derived_write(lambda reads: ("y", "updated")),
    ])
    assert result.committed
    check = execute(testbed, testbed.make_client("eventual"),
                    [Operation.read("y")])
    assert check.value_read("y") == "updated"


def test_read_only_transactions_still_get_a_timestamp():
    testbed = preloaded_testbed()
    for protocol in ("eventual", "mav", "quorum"):
        result = execute(testbed, testbed.make_client(protocol),
                         [Operation.read("x")])
        assert result.committed
        assert result.timestamp is not None
