"""Tests for testbed assembly."""

import pytest

from repro.errors import ReproError
from repro.hat.protocols import ALL_PROTOCOLS, protocol_info
from repro.hat.testbed import FIVE_REGION_DEPLOYMENT, Scenario, build_testbed


class TestScenario:
    def test_cluster_regions_expansion(self):
        scenario = Scenario(regions=["VA", "OR"], clusters_per_region=2)
        assert scenario.cluster_regions() == ["VA", "VA", "OR", "OR"]

    def test_default_is_single_region(self):
        assert Scenario().cluster_regions() == ["VA"]


class TestBuildTestbed:
    def test_servers_match_configuration(self):
        testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=3))
        assert testbed.total_server_count() == 6
        assert len(testbed.config.cluster_names) == 2

    def test_five_region_deployment(self):
        testbed = build_testbed(Scenario(regions=list(FIVE_REGION_DEPLOYMENT),
                                         servers_per_cluster=1))
        assert testbed.total_server_count() == 5
        regions = {cluster.region for cluster in testbed.config.clusters}
        assert regions == set(FIVE_REGION_DEPLOYMENT)

    def test_two_clusters_same_region_use_distinct_zones(self):
        testbed = build_testbed(Scenario(regions=["VA"], clusters_per_region=2,
                                         servers_per_cluster=1))
        zones = {testbed.topology.site(s).zone for s in testbed.config.all_servers}
        assert len(zones) == 2

    def test_every_protocol_has_a_client_factory(self):
        testbed = build_testbed(Scenario(regions=["VA"], servers_per_cluster=1))
        for protocol in ALL_PROTOCOLS:
            client = testbed.make_client(protocol)
            assert client is not None
            assert protocol_info(protocol).name == protocol

    def test_unknown_protocol_rejected(self):
        testbed = build_testbed(Scenario())
        with pytest.raises(ReproError):
            testbed.make_client("three-phase-hope")

    def test_make_clients_spreads_over_clusters(self):
        testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=1))
        clients = testbed.make_clients("eventual", per_cluster=2)
        assert len(clients) == 4
        homes = {client.node.home_cluster for client in clients}
        assert homes == set(testbed.config.cluster_names)

    def test_clients_are_colocated_with_home_cluster(self):
        testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=1))
        client = testbed.make_client("eventual",
                                     home_cluster=testbed.config.cluster_names[1])
        client_region = testbed.topology.site(client.node.name).region
        cluster_region = testbed.config.cluster(client.node.home_cluster).region
        assert client_region == cluster_region

    def test_fixed_latency_scenario(self):
        testbed = build_testbed(Scenario(regions=["VA"], servers_per_cluster=2,
                                         fixed_latency_ms=2.0))
        a, b = testbed.config.all_servers[:2]
        assert testbed.network.latency.mean_rtt(a, b) == 4.0

    def test_run_advances_time(self):
        testbed = build_testbed(Scenario())
        before = testbed.env.now
        testbed.run(500.0)
        assert testbed.env.now == before + 500.0


class TestProtocolRegistry:
    def test_hat_protocols_marked_available(self):
        for name in ("eventual", "read-committed", "mav"):
            assert protocol_info(name).highly_available

    def test_non_hat_protocols_marked_unavailable(self):
        for name in ("master", "two-phase-locking", "quorum"):
            assert not protocol_info(name).highly_available

    def test_unknown_protocol_lookup(self):
        with pytest.raises(KeyError):
            protocol_info("mystery")
