"""Tests for the non-HAT clients: master, two-phase locking, quorum."""

import pytest

from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction


@pytest.fixture
def testbed():
    return build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))


def run(testbed, client, operations):
    return testbed.env.run_until_complete(
        client.execute(Transaction(list(operations)))
    )


class TestMasterClient:
    def test_read_latest_across_clients(self, testbed):
        """Per-key linearizability: a read after a write sees it immediately,
        regardless of which datacenter the clients live in."""
        writer = testbed.make_client("master", home_cluster=testbed.config.cluster_names[0])
        reader = testbed.make_client("master", home_cluster=testbed.config.cluster_names[1])
        run(testbed, writer, [Operation.write("x", "fresh")])
        result = run(testbed, reader, [Operation.read("x")])
        assert result.value_read("x") == "fresh"

    def test_pays_wide_area_latency(self, testbed):
        """Roughly half the keys are mastered in the remote region, so an
        8-operation transaction almost surely pays at least one WAN RTT."""
        client = testbed.make_client("master")
        result = run(testbed, client,
                     [Operation.write(f"key{i}", i) for i in range(8)])
        assert result.committed
        assert result.latency_ms > 50.0
        assert result.remote_rpcs >= 1

    def test_updates_replicate_asynchronously(self, testbed):
        client = testbed.make_client("master")
        run(testbed, client, [Operation.write("x", 5)])
        testbed.run(1000.0)
        replicas = testbed.config.replicas_for("x")
        values = {testbed.servers[r].store.data.latest("x").value for r in replicas}
        assert values == {5}


class TestTwoPhaseLockingClient:
    def test_serializable_read_modify_write(self, testbed):
        client = testbed.make_client("two-phase-locking")
        run(testbed, client, [Operation.write("x", 1)])
        result = run(testbed, client, [Operation.read("x"), Operation.write("x", 2)])
        assert result.committed
        check = run(testbed, client, [Operation.read("x")])
        assert check.value_read("x") == 2

    def test_locks_released_after_commit(self, testbed):
        client = testbed.make_client("two-phase-locking")
        run(testbed, client, [Operation.write("x", 1)])
        # Releases are asynchronous (fire-and-forget after commit): let the
        # release message reach the lock manager before checking.
        testbed.run(1000.0)
        master = testbed.config.master_for("x")
        assert testbed.servers[master].locks.holder("x") is None

    def test_conflicting_transactions_serialize(self, testbed):
        """Two read-modify-writes on the same key never both read the old value."""
        a = testbed.make_client("two-phase-locking")
        b = testbed.make_client("two-phase-locking")
        run(testbed, a, [Operation.write("counter", 0)])
        txn = [Operation.read("counter"), Operation.write("counter", 1)]
        process_a = a.execute(Transaction(list(txn)))
        process_b = b.execute(Transaction(list(txn)))
        result_a = testbed.env.run_until_complete(process_a)
        result_b = testbed.env.run_until_complete(process_b)
        assert result_a.committed and result_b.committed
        # One of them must have observed the other's write (serial order).
        observed = {result_a.value_read("counter"), result_b.value_read("counter")}
        assert observed == {0, 1}

    def test_lock_timeout_aborts(self, testbed):
        blocker = testbed.make_client("two-phase-locking")
        victim = testbed.make_client("two-phase-locking", lock_timeout_ms=200.0)
        # The blocker grabs the lock and then stalls on many remote operations.
        long_txn = [Operation.read("hot")] + [Operation.read(f"other{i}") for i in range(200)]
        blocking_process = blocker.execute(Transaction(long_txn))
        victim_result = testbed.env.run_until_complete(
            victim.execute(Transaction([Operation.read("hot"), Operation.write("hot", 1)]))
        )
        assert not victim_result.committed
        assert not victim_result.internal_abort  # a system (external) abort
        blocker_result = testbed.env.run_until_complete(blocking_process)
        assert blocker_result.committed


class TestQuorumClient:
    def test_write_then_read_sees_latest(self, testbed):
        writer = testbed.make_client("quorum", home_cluster=testbed.config.cluster_names[0])
        reader = testbed.make_client("quorum", home_cluster=testbed.config.cluster_names[1])
        run(testbed, writer, [Operation.write("x", "q-value")])
        result = run(testbed, reader, [Operation.read("x")])
        assert result.value_read("x") == "q-value"

    def test_majority_requires_wide_area_round_trip(self, testbed):
        """With one replica per datacenter, a majority always crosses the WAN."""
        client = testbed.make_client("quorum")
        result = run(testbed, client, [Operation.write("x", 1)])
        assert result.latency_ms > 30.0

    def test_reads_pick_highest_timestamp(self, testbed):
        client = testbed.make_client("quorum")
        run(testbed, client, [Operation.write("x", "old")])
        run(testbed, client, [Operation.write("x", "new")])
        result = run(testbed, client, [Operation.read("x")])
        assert result.value_read("x") == "new"
