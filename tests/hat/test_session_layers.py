"""Per-guarantee session layers under partitions (Section 5.1.3).

For each of RYW/MR/MW/WFR: a partition forces the session (or its readers)
onto a different replica set, the corresponding layer upholds the guarantee,
and a no-layer control run exhibits exactly the violation the layer exists
to prevent.
"""

import pytest

from repro.adya.history import HistoryRecorder
from repro.adya.phenomena import MRWD, MYR, N_MR, detect
from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction


def frozen_ae_testbed():
    """Two regions whose replicas only converge through explicit action.

    The huge anti-entropy interval keeps the clusters divergent for the whole
    test, so which side holds which version is fully deterministic.
    """
    return build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2,
                                  anti_entropy_interval_ms=600_000.0))


def run(testbed, client, operations):
    return testbed.env.run_until_complete(
        client.execute(Transaction(list(operations)))
    )


def partition_away(testbed, cluster_name):
    """Make ``cluster_name``'s servers unreachable from everyone else."""
    dead = set(testbed.config.cluster(cluster_name).servers)
    testbed.network.partitions.partition_by(
        lambda site: None if site in dead else "rest"
    )


class TestReadYourWrites:
    def scenario(self, protocol, recorder=None):
        testbed = frozen_ae_testbed()
        home = testbed.config.cluster_names[0]
        session = testbed.make_client(protocol, home_cluster=home,
                                      recorder=recorder)
        run(testbed, session, [Operation.write("profile", "mine")])
        partition_away(testbed, home)
        result = run(testbed, session, [Operation.read("profile")])
        return session, result

    def test_control_exhibits_ryw_violation(self):
        recorder = HistoryRecorder()
        _, result = self.scenario("read-committed", recorder)
        assert result.value_read("profile") is None
        assert detect(recorder.build(), MYR)

    def test_ryw_layer_upholds_guarantee_across_failover(self):
        recorder = HistoryRecorder()
        session, result = self.scenario("read-committed+ryw", recorder)
        assert result.value_read("profile") == "mine"
        assert session.violations() == 0
        assert session.session.cache_hits >= 1
        assert not detect(recorder.build(), MYR)


class TestMonotonicReads:
    def scenario(self, protocol, recorder=None):
        # Both clusters converge on "old"; only the home cluster sees "new".
        testbed = build_testbed(Scenario(regions=["VA", "OR"],
                                         servers_per_cluster=2,
                                         anti_entropy_interval_ms=500.0))
        home = testbed.config.cluster_names[0]
        writer = testbed.make_client("eventual", home_cluster=home,
                                     recorder=recorder)
        run(testbed, writer, [Operation.write("feed", "old")])
        testbed.run(2_000.0)  # anti-entropy copies "old" everywhere
        run(testbed, writer, [Operation.write("feed", "new")])
        session = testbed.make_client(protocol, home_cluster=home,
                                      recorder=recorder)
        first = run(testbed, session, [Operation.read("feed")])
        assert first.value_read("feed") == "new"
        partition_away(testbed, home)
        second = run(testbed, session, [Operation.read("feed")])
        return session, second

    def test_control_reads_go_backwards(self):
        recorder = HistoryRecorder()
        _, second = self.scenario("read-committed", recorder)
        assert second.value_read("feed") == "old"
        assert detect(recorder.build(), N_MR)

    def test_mr_layer_upholds_guarantee_across_failover(self):
        recorder = HistoryRecorder()
        session, second = self.scenario("read-committed+mr", recorder)
        assert second.value_read("feed") == "new"
        assert session.violations() == 0
        assert not detect(recorder.build(), N_MR)


class TestMonotonicWrites:
    def scenario(self, protocol):
        testbed = frozen_ae_testbed()
        home, away = testbed.config.cluster_names
        session = testbed.make_client(protocol, home_cluster=home)
        reader = testbed.make_client("eventual", home_cluster=away)
        run(testbed, session, [Operation.write("first", "w1")])
        partition_away(testbed, home)
        run(testbed, session, [Operation.write("second", "w2")])
        observed = run(testbed, reader, [Operation.read("second"),
                                         Operation.read("first")])
        return observed

    def test_control_reveals_later_write_without_earlier(self):
        observed = self.scenario("read-committed")
        assert observed.value_read("second") == "w2"
        assert observed.value_read("first") is None

    def test_mw_layer_forwards_earlier_session_writes(self):
        """Before the failed-over write lands, the session's earlier writes
        are installed on the same side of the partition."""
        observed = self.scenario("read-committed+mw")
        assert observed.value_read("second") == "w2"
        assert observed.value_read("first") == "w1"


class TestWritesFollowReads:
    def scenario(self, protocol, recorder=None):
        testbed = frozen_ae_testbed()
        home, away = testbed.config.cluster_names
        author = testbed.make_client("eventual", home_cluster=home,
                                     recorder=recorder)
        session = testbed.make_client(protocol, home_cluster=home,
                                      recorder=recorder)
        reader = testbed.make_client("eventual", home_cluster=away,
                                     recorder=recorder)
        run(testbed, author, [Operation.write("message", "hello")])
        seen = run(testbed, session, [Operation.read("message")])
        assert seen.value_read("message") == "hello"
        partition_away(testbed, home)
        run(testbed, session, [Operation.write("reply", "hello yourself")])
        observed = run(testbed, reader, [Operation.read("reply"),
                                         Operation.read("message")])
        return observed

    def test_control_reveals_reply_without_cause(self):
        recorder = HistoryRecorder()
        observed = self.scenario("read-committed", recorder)
        assert observed.value_read("reply") == "hello yourself"
        assert observed.value_read("message") is None
        assert detect(recorder.build(), MRWD)

    def test_wfr_layer_forwards_observed_versions(self):
        """The session pushes what it has read to the failover replicas
        before its own dependent write becomes visible there."""
        recorder = HistoryRecorder()
        observed = self.scenario("read-committed+wfr", recorder)
        assert observed.value_read("reply") == "hello yourself"
        assert observed.value_read("message") == "hello"
        assert not detect(recorder.build(), MRWD)


class TestRepairedReadsDoNotPoisonForwarding:
    def test_cache_repaired_read_still_forwards_dependency(self):
        """A read repaired from the session cache says nothing about what the
        stale replica holds, so forwarding must still push the dependency.

        Regression: noting the failover replica as a holder of the *repaired*
        version would silently skip WFR forwarding, and a reader there would
        observe the session's write without its cause.
        """
        testbed = frozen_ae_testbed()
        home, away = testbed.config.cluster_names
        session = testbed.make_client("causal", home_cluster=home)
        reader = testbed.make_client("eventual", home_cluster=away)
        run(testbed, session, [Operation.write("cause", "x")])
        partition_away(testbed, home)
        # The failover replica returns the initial version; the session cache
        # repairs the observation — but the replica is still stale.
        repaired = run(testbed, session, [Operation.read("cause")])
        assert repaired.value_read("cause") == "x"
        run(testbed, session, [Operation.write("effect", "y")])
        observed = run(testbed, reader, [Operation.read("effect"),
                                         Operation.read("cause")])
        assert observed.value_read("effect") == "y"
        assert observed.value_read("cause") == "x"


class TestForwardingIsLazy:
    def test_no_forwarding_rpcs_on_healthy_network(self):
        """On an unpartitioned deployment the sticky replica already holds
        the session's memory, so MW/WFR forwarding issues no extra RPCs."""
        testbed = frozen_ae_testbed()
        session = testbed.make_client("causal")
        run(testbed, session, [Operation.write("a", 1)])
        run(testbed, session, [Operation.read("a")])
        result = run(testbed, session, [Operation.write("b", 2)])
        # One flush RPC for the write of b; nothing forwarded for a.
        assert result.remote_rpcs == 0
        assert session.session.holders_of(
            "a", session.session.own_writes["a"].timestamp
        )
