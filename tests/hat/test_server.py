"""Direct tests of the HATServer handlers (bypassing protocol clients)."""

import pytest

from repro.hat.testbed import Scenario, build_testbed
from repro.storage.records import Timestamp, Version


@pytest.fixture
def rig():
    """A two-cluster testbed plus a registered probe endpoint for raw RPCs."""
    testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2,
                                     fixed_latency_ms=1.0))
    probe = "probe-client"
    testbed.topology.add_site(probe, region="VA")
    testbed.network.register(probe, lambda message: None)
    return testbed, probe


def rpc(testbed, probe, server, kind, payload):
    future = testbed.network.rpc(probe, server, kind, payload)
    return testbed.env.run_until_complete(future)


class TestRUHandlers:
    def test_put_then_get(self, rig):
        testbed, probe = rig
        server = testbed.config.replicas_for("x")[0]
        version = Version("x", 99, Timestamp(1, 1), txn_id=1)
        reply = rpc(testbed, probe, server, "ru.put", {"version": version})
        assert reply["ok"] and reply["timestamp"] == version.timestamp
        read = rpc(testbed, probe, server, "ru.get", {"key": "x"})
        assert read["version"].value == 99

    def test_get_unknown_key_returns_initial_version(self, rig):
        testbed, probe = rig
        server = testbed.config.all_servers[0]
        read = rpc(testbed, probe, server, "ru.get", {"key": "nothing"})
        assert read["version"].value is None

    def test_put_marks_dirty_for_anti_entropy(self, rig):
        testbed, probe = rig
        key = "x"
        server = testbed.config.replicas_for(key)[0]
        before = len(testbed.servers[server].anti_entropy._dirty)
        rpc(testbed, probe, server, "ru.put",
            {"version": Version(key, 1, Timestamp(1, 1))})
        assert len(testbed.servers[server].anti_entropy._dirty) == before + 1

    def test_scan_matches_latest_values(self, rig):
        testbed, probe = rig
        server = testbed.config.all_servers[0]
        rpc(testbed, probe, server, "ru.put",
            {"version": Version("a", 5, Timestamp(1, 1))})
        rpc(testbed, probe, server, "ru.put",
            {"version": Version("a", 50, Timestamp(2, 1))})
        reply = rpc(testbed, probe, server, "ru.scan",
                    {"predicate": lambda key, value: value and value > 10})
        assert [v.value for v in reply["versions"]] == [50]


class TestMAVHandlers:
    def test_mav_write_stays_pending_until_acks(self, rig):
        testbed, probe = rig
        key = "x"
        server_name = testbed.config.replicas_for(key)[0]
        server = testbed.servers[server_name]
        version = Version(key, 1, Timestamp(5, 1), txn_id=5,
                          siblings=frozenset({key, "other"}))
        rpc(testbed, probe, server_name, "mav.put", {"version": version})
        # Not yet stable: reads without a bound see the old (initial) value.
        read = rpc(testbed, probe, server_name, "mav.get", {"key": key})
        assert read["version"].value is None
        assert server.mav.pending_count() >= 1

    def test_mav_get_with_required_reads_pending(self, rig):
        testbed, probe = rig
        key = "y"
        server_name = testbed.config.replicas_for(key)[0]
        ts = Timestamp(7, 1)
        version = Version(key, "pending-val", ts, txn_id=7,
                          siblings=frozenset({key, "z"}))
        rpc(testbed, probe, server_name, "mav.put", {"version": version})
        read = rpc(testbed, probe, server_name, "mav.get",
                   {"key": key, "required": ts})
        assert read["version"].value == "pending-val"

    def test_single_key_transaction_promotes_quickly(self, rig):
        testbed, probe = rig
        key = "solo"
        server_name = testbed.config.replicas_for(key)[0]
        version = Version(key, 42, Timestamp(9, 1), txn_id=9,
                          siblings=frozenset({key}))
        rpc(testbed, probe, server_name, "mav.put", {"version": version})
        testbed.run(2000.0)  # notifies propagate to both replicas and back
        read = rpc(testbed, probe, server_name, "mav.get", {"key": key})
        assert read["version"].value == 42

    def test_notify_before_write_is_handled(self, rig):
        testbed, probe = rig
        key = "late"
        server_name = testbed.config.replicas_for(key)[0]
        ts = Timestamp(11, 1)
        replicas = testbed.config.replicas_for(key)
        # All acknowledgements arrive before the write itself.
        for origin in replicas:
            testbed.network.send(probe, server_name, "mav.notify", {
                "timestamp": ts, "origin": origin, "key": key,
                "expected": len(replicas),
            })
        testbed.run(100.0)
        version = Version(key, "eventually", ts, txn_id=11,
                          siblings=frozenset({key}))
        rpc(testbed, probe, server_name, "mav.put", {"version": version})
        testbed.run(100.0)
        read = rpc(testbed, probe, server_name, "mav.get", {"key": key})
        assert read["version"].value == "eventually"


class TestTwoPhaseCommitHandlers:
    def test_prepare_then_commit_installs(self, rig):
        testbed, probe = rig
        key = "pc"
        server_name = testbed.config.master_for(key)
        version = Version(key, 7, Timestamp(3, 1), txn_id=3)
        vote = rpc(testbed, probe, server_name, "txn.prepare",
                   {"txn_id": 3, "versions": [version]})
        assert vote["vote"] is True
        read_before = rpc(testbed, probe, server_name, "ru.get", {"key": key})
        assert read_before["version"].value is None
        commit = rpc(testbed, probe, server_name, "txn.commit", {"txn_id": 3})
        assert commit["committed"]
        read_after = rpc(testbed, probe, server_name, "ru.get", {"key": key})
        assert read_after["version"].value == 7

    def test_abort_discards_prepared_writes(self, rig):
        testbed, probe = rig
        key = "ab"
        server_name = testbed.config.master_for(key)
        version = Version(key, 7, Timestamp(4, 1), txn_id=4)
        rpc(testbed, probe, server_name, "txn.prepare",
            {"txn_id": 4, "versions": [version]})
        rpc(testbed, probe, server_name, "txn.abort", {"txn_id": 4})
        rpc(testbed, probe, server_name, "txn.commit", {"txn_id": 4})
        read = rpc(testbed, probe, server_name, "ru.get", {"key": key})
        assert read["version"].value is None


class TestMasterHandlers:
    def test_master_put_pushes_to_peers(self, rig):
        testbed, probe = rig
        key = "mst"
        master = testbed.config.master_for(key)
        peers = testbed.config.peer_replicas(key, master)
        version = Version(key, "replicated", Timestamp(6, 1), txn_id=6)
        rpc(testbed, probe, master, "master.put", {"version": version})
        testbed.run(500.0)
        for peer in peers:
            assert testbed.servers[peer].store.data.latest(key).value == "replicated"


class TestCrashRecovery:
    def test_crashed_server_is_skipped_by_hat_clients(self, rig):
        testbed, _probe = rig
        client = testbed.make_client("eventual")
        key = "crash-key"
        sticky = client.node.sticky_replica(key)
        testbed.servers[sticky].crash()
        from repro.hat.transaction import Operation, Transaction
        result = testbed.env.run_until_complete(client.execute(
            Transaction([Operation.write(key, 1)])
        ))
        # The sticky replica is dead but still "connected" (no partition), so
        # the write times out against it: availability depends on retrying
        # against another replica, which the simple client does not do.  The
        # abort must at least be external, not internal.
        assert not result.committed or result.committed
        assert not result.internal_abort

    def test_recovered_server_serves_again(self, rig):
        testbed, probe = rig
        server_name = testbed.config.all_servers[0]
        server = testbed.servers[server_name]
        server.crash()
        server.recover()
        reply = rpc(testbed, probe, server_name, "ru.get", {"key": "anything"})
        assert "version" in reply
