"""Tests for the three HAT clients: eventual, Read Committed, and MAV."""

import pytest

from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction


@pytest.fixture
def testbed():
    return build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))


def run(testbed, client, operations):
    return testbed.env.run_until_complete(
        client.execute(Transaction(list(operations)))
    )


class TestEventualClient:
    def test_write_then_read(self, testbed):
        client = testbed.make_client("eventual")
        run(testbed, client, [Operation.write("x", 1)])
        result = run(testbed, client, [Operation.read("x")])
        assert result.committed and result.value_read("x") == 1

    def test_writes_visible_immediately_at_sticky_replica(self, testbed):
        """Read Uncommitted: no buffering, each write applies on arrival."""
        client = testbed.make_client("eventual")
        result = run(testbed, client, [
            Operation.write("x", 1), Operation.read("x"),
        ])
        assert result.value_read("x") == 1

    def test_latency_stays_local(self, testbed):
        """HAT clients never wait on the wide area: latency ~ intra-DC RTTs."""
        client = testbed.make_client("eventual")
        result = run(testbed, client, [Operation.write("x", 1), Operation.read("x")])
        assert result.latency_ms < 20.0

    def test_scan_merges_cluster_servers(self, testbed):
        client = testbed.make_client("eventual")
        run(testbed, client, [Operation.write(f"item{i}", i) for i in range(6)])
        result = run(testbed, client, [
            Operation.scan(lambda key, value: isinstance(value, int) and value >= 3,
                           name="big-items"),
        ])
        values = {v.value for v in result.scan_results[0]}
        assert values == {3, 4, 5}

    def test_remote_reads_are_stale_until_antientropy(self, testbed):
        local = testbed.make_client("eventual", home_cluster=testbed.config.cluster_names[0])
        remote = testbed.make_client("eventual", home_cluster=testbed.config.cluster_names[1])
        run(testbed, local, [Operation.write("x", "new")])
        stale = run(testbed, remote, [Operation.read("x")])
        assert stale.value_read("x") is None  # not yet propagated
        testbed.run(1000.0)
        fresh = run(testbed, remote, [Operation.read("x")])
        assert fresh.value_read("x") == "new"


class TestReadCommittedClient:
    def test_buffered_writes_apply_at_commit(self, testbed):
        client = testbed.make_client("read-committed")
        result = run(testbed, client, [Operation.write("x", 10), Operation.read("x")])
        # The read observes the client's own buffered write.
        assert result.value_read("x") == 10
        follow_up = run(testbed, client, [Operation.read("x")])
        assert follow_up.value_read("x") == 10

    def test_no_dirty_reads_between_clients(self, testbed):
        """A concurrent reader never observes another client's unflushed buffer."""
        writer = testbed.make_client("read-committed")
        reader = testbed.make_client("read-committed")
        # Start a long transaction whose writes stay buffered until commit; the
        # reader runs entirely before the writer's commit point.
        writer_txn = Transaction([Operation.write("x", "uncommitted")]
                                 + [Operation.read(f"pad{i}") for i in range(50)])
        writer_process = writer.execute(writer_txn)
        reader_result = testbed.env.run_until_complete(
            reader.execute(Transaction([Operation.read("x")]))
        )
        assert reader_result.value_read("x") is None
        writer_result = testbed.env.run_until_complete(writer_process)
        assert writer_result.committed

    def test_commit_flushes_all_writes(self, testbed):
        client = testbed.make_client("read-committed")
        run(testbed, client, [Operation.write("a", 1), Operation.write("b", 2)])
        result = run(testbed, client, [Operation.read("a"), Operation.read("b")])
        assert result.value_read("a") == 1 and result.value_read("b") == 2


class TestMAVClient:
    def test_commit_becomes_visible_after_stabilization(self, testbed):
        client = testbed.make_client("mav")
        run(testbed, client, [Operation.write("x", 1), Operation.write("y", 1)])
        testbed.run(1500.0)
        result = run(testbed, client, [Operation.read("x"), Operation.read("y")])
        assert result.value_read("x") == 1 and result.value_read("y") == 1

    def test_atomic_visibility_all_or_nothing(self, testbed):
        """Once any write of a transaction is seen, its siblings are seen too."""
        writer = testbed.make_client("mav", home_cluster=testbed.config.cluster_names[0])
        reader = testbed.make_client("mav", home_cluster=testbed.config.cluster_names[1])
        run(testbed, writer, [Operation.write("acct-a", 100),
                              Operation.write("acct-b", 200)])
        testbed.run(2000.0)
        result = run(testbed, reader, [Operation.read("acct-a"), Operation.read("acct-b")])
        values = (result.value_read("acct-a"), result.value_read("acct-b"))
        assert values in ((100, 200), (None, None)) or values == (100, 200)
        assert values == (100, 200)

    def test_read_own_buffered_writes(self, testbed):
        client = testbed.make_client("mav")
        result = run(testbed, client, [
            Operation.write("x", 7), Operation.read("x"),
        ])
        assert result.value_read("x") == 7

    def test_metadata_includes_all_siblings(self, testbed):
        client = testbed.make_client("mav")
        run(testbed, client, [Operation.write("k1", 1), Operation.write("k2", 2),
                              Operation.write("k3", 3)])
        testbed.run(1500.0)
        # Every server that holds one of the keys stores its sibling list.
        found_siblings = set()
        for server in testbed.server_list():
            for key in ("k1", "k2", "k3"):
                version = server.store.data.latest(key)
                if version.value is not None:
                    found_siblings |= set(version.siblings)
        assert found_siblings == {"k1", "k2", "k3"}
