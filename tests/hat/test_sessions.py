"""Tests for session guarantees (Section 5.1.3)."""

import pytest

from repro.hat.sessions import SessionClient
from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction


@pytest.fixture
def testbed():
    return build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))


def run(testbed, client, operations):
    return testbed.env.run_until_complete(
        client.execute(Transaction(list(operations)))
    )


class TestStickySessionGuarantees:
    def test_read_your_writes_across_transactions(self, testbed):
        base = testbed.make_client("read-committed")
        session = SessionClient(base, sticky=True)
        run(testbed, session, [Operation.write("profile", "v1")])
        result = run(testbed, session, [Operation.read("profile")])
        assert result.value_read("profile") == "v1"
        assert session.violations() == 0

    def test_monotonic_reads_never_go_backwards(self, testbed):
        """Even if a later read hits a stale replica, the session never
        observes an older version than it has already seen."""
        base = testbed.make_client("eventual")
        session = SessionClient(base, sticky=True)
        writer = testbed.make_client("eventual",
                                     home_cluster=testbed.config.cluster_names[1])
        run(testbed, writer, [Operation.write("feed", "old")])
        testbed.run(1500.0)
        first = run(testbed, session, [Operation.read("feed")])
        assert first.value_read("feed") == "old"
        run(testbed, writer, [Operation.write("feed", "new")])
        testbed.run(1500.0)
        second = run(testbed, session, [Operation.read("feed")])
        assert second.value_read("feed") == "new"
        third = run(testbed, session, [Operation.read("feed")])
        assert third.value_read("feed") == "new"

    def test_session_cache_repairs_stale_replica_read(self, testbed):
        """If the contacted replica lags behind the session's own write, the
        sticky session serves the cached write (client-side caching)."""
        base = testbed.make_client("read-committed",
                                   home_cluster=testbed.config.cluster_names[0])
        session = SessionClient(base, sticky=True)
        run(testbed, session, [Operation.write("inbox", "mine")])
        # Force the next read to another cluster that has not converged yet by
        # partitioning away the home cluster's servers.
        home_servers = testbed.config.cluster(testbed.config.cluster_names[0]).servers
        testbed.network.partitions.partition_by(
            lambda site: None if site in home_servers else "rest"
        )
        result = run(testbed, session, [Operation.read("inbox")])
        assert result.value_read("inbox") == "mine"
        assert session.state.cache_hits >= 1


class TestNonStickySessions:
    def test_ryw_violation_possible_without_stickiness(self, testbed):
        """The paper's impossibility argument: without stickiness, a client
        forced onto a different replica can miss its own writes."""
        base = testbed.make_client("read-committed",
                                   home_cluster=testbed.config.cluster_names[0])
        session = SessionClient(base, sticky=False)
        run(testbed, session, [Operation.write("cart", "item-1")])
        home_servers = testbed.config.cluster(testbed.config.cluster_names[0]).servers
        testbed.network.partitions.partition_by(
            lambda site: None if site in home_servers else "rest"
        )
        result = run(testbed, session, [Operation.read("cart")])
        # The stale read is observed (not repaired) and counted as a violation.
        assert result.value_read("cart") is None
        assert session.violations() >= 1

    def test_sticky_flag_controls_repair(self, testbed):
        sticky = SessionClient(testbed.make_client("read-committed"), sticky=True)
        loose = SessionClient(testbed.make_client("read-committed"), sticky=False)
        assert sticky.sticky and not loose.sticky


class TestSessionBookkeeping:
    def test_high_water_mark_advances(self, testbed):
        session = SessionClient(testbed.make_client("read-committed"))
        run(testbed, session, [Operation.write("a", 1)])
        first = session.state.high_water
        run(testbed, session, [Operation.write("b", 2)])
        assert session.state.high_water >= first

    def test_aborted_transactions_do_not_update_state(self, testbed):
        testbed.partition_regions([["VA"], ["OR"]])
        base = testbed.make_client("quorum")  # quorum cannot commit here
        session = SessionClient(base, sticky=True)
        result = run(testbed, session, [Operation.write("x", 1)])
        assert not result.committed
        assert session.state.own_writes == {}

    def test_protocol_name_suffix(self, testbed):
        session = SessionClient(testbed.make_client("mav"))
        assert session.protocol_name == "mav+session"
