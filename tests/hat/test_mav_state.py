"""Unit tests for the MAV pending/good/acknowledgement state machine."""

from repro.hat.mav_state import MAVState
from repro.storage.records import Timestamp, Version


def mav_write(key, value, seq, siblings):
    return Version(key=key, value=value, timestamp=Timestamp(seq, 1),
                   txn_id=seq, siblings=frozenset(siblings))


class TestMAVState:
    def test_add_write_dedupes(self):
        state = MAVState(replication_factor=2)
        version = mav_write("x", 1, 1, {"x", "y"})
        assert state.add_write(version) is True
        assert state.add_write(version) is False
        assert state.pending_count() == 1

    def test_expected_acks_is_siblings_times_replicas(self):
        state = MAVState(replication_factor=3)
        state.add_write(mav_write("x", 1, 1, {"x", "y"}))
        entry = state._pending[Timestamp(1, 1)]
        assert entry.expected_acks == 6

    def test_not_stable_until_all_acks(self):
        state = MAVState(replication_factor=2)
        ts = Timestamp(1, 1)
        state.add_write(mav_write("x", 1, 1, {"x", "y"}))
        assert not state.is_stable(ts)
        assert state.record_ack(ts, "r1", "x", expected_acks=4) is False
        assert state.record_ack(ts, "r2", "x", expected_acks=4) is False
        assert state.record_ack(ts, "r1", "y", expected_acks=4) is False
        assert state.record_ack(ts, "r2", "y", expected_acks=4) is True
        assert state.is_stable(ts)

    def test_duplicate_acks_do_not_double_count(self):
        state = MAVState(replication_factor=2)
        ts = Timestamp(1, 1)
        state.add_write(mav_write("x", 1, 1, {"x"}))
        for _ in range(5):
            state.record_ack(ts, "r1", "x", expected_acks=2)
        assert not state.is_stable(ts)

    def test_take_stable_writes_only_when_stable(self):
        state = MAVState(replication_factor=1)
        ts = Timestamp(1, 1)
        version = mav_write("x", 1, 1, {"x"})
        state.add_write(version)
        assert state.take_stable_writes(ts) == []
        state.record_ack(ts, "r1", "x", expected_acks=1)
        taken = state.take_stable_writes(ts)
        assert taken == [version]
        assert state.pending_count() == 0
        # Taking again returns nothing (already promoted).
        assert state.take_stable_writes(ts) == []

    def test_acks_arriving_before_write(self):
        """Acknowledgements may arrive before the anti-entropied write does."""
        state = MAVState(replication_factor=1)
        ts = Timestamp(3, 1)
        state.record_ack(ts, "r1", "x", expected_acks=2)
        state.record_ack(ts, "r1", "y", expected_acks=2)
        assert state.is_stable(ts)
        version = mav_write("x", 1, 3, {"x", "y"})
        state.add_write(version)
        assert state.take_stable_writes(ts) == [version]

    def test_read_pending_exact_timestamp(self):
        state = MAVState(replication_factor=2)
        ts = Timestamp(2, 1)
        version = mav_write("x", "pending-value", 2, {"x", "y"})
        state.add_write(version)
        assert state.read_pending("x", ts) is version
        assert state.read_pending("x", Timestamp(9, 9)) is None
        assert state.read_pending("unknown", ts) is None

    def test_read_pending_returns_newer_stable_version(self):
        state = MAVState(replication_factor=1)
        newer = mav_write("x", "newer", 5, {"x"})
        state.add_write(newer)
        state.record_ack(Timestamp(5, 1), "r1", "x", expected_acks=1)
        found = state.read_pending("x", Timestamp(2, 1))
        assert found is newer

    def test_tracked_transactions(self):
        state = MAVState(replication_factor=1)
        state.add_write(mav_write("x", 1, 1, {"x"}))
        state.add_write(mav_write("y", 1, 2, {"y"}))
        assert state.tracked_transactions() == 2
