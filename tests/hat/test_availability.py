"""Availability under network partitions: the paper's central claim.

HAT protocols keep committing when every accessed item has *some* reachable
replica (transactional availability, Section 4.2); master, two-phase locking,
and quorum configurations block or abort when the partition separates the
client from masters or majorities (Section 5.2 / 6.1).
"""

import pytest

from repro.hat.protocols import HAT_PROTOCOLS
from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction


@pytest.fixture
def partitioned_testbed():
    """VA and OR cannot talk to each other; clients are in VA."""
    testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))
    testbed.partition_regions([["VA"], ["OR"]])
    return testbed


def run(testbed, client, operations, timeout_ms=None):
    kwargs = {} if timeout_ms is None else {"rpc_timeout_ms": timeout_ms}
    return testbed.env.run_until_complete(
        client.execute(Transaction(list(operations)))
    )


OPS = [Operation.write("k1", 1), Operation.write("k2", 2),
       Operation.read("k1"), Operation.read("k2")]


class TestHATAvailabilityUnderPartition:
    @pytest.mark.parametrize("protocol", HAT_PROTOCOLS)
    def test_hat_protocols_commit_during_partition(self, partitioned_testbed, protocol):
        client = partitioned_testbed.make_client(protocol)
        result = run(partitioned_testbed, client, OPS)
        assert result.committed, f"{protocol} should stay available: {result.error}"

    @pytest.mark.parametrize("protocol", HAT_PROTOCOLS)
    def test_hat_latency_unaffected_by_partition(self, partitioned_testbed, protocol):
        client = partitioned_testbed.make_client(protocol)
        result = run(partitioned_testbed, client, OPS)
        assert result.latency_ms < 50.0

    def test_replica_unavailability_aborts_externally(self):
        """If *no* replica of an item is reachable, even HATs cannot proceed —
        that is the replica-availability precondition, not a HAT failure."""
        testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=1))
        client = testbed.make_client("eventual")
        # Cut the client off from every server.
        testbed.network.partitions.partition([[client.node.name]])
        result = run(testbed, client, [Operation.write("x", 1)])
        assert not result.committed
        assert not result.internal_abort


class TestNonHATUnavailabilityUnderPartition:
    def test_master_blocks_for_remote_keys(self, partitioned_testbed):
        client = partitioned_testbed.make_client("master")
        # Find a key mastered in the unreachable region.
        remote_key = next(
            key for key in (f"key{i}" for i in range(100))
            if partitioned_testbed.config.cluster_of_server(
                partitioned_testbed.config.master_for(key)
            ) == partitioned_testbed.config.cluster_names[1]
        )
        result = run(partitioned_testbed, client, [Operation.write(remote_key, 1)])
        assert not result.committed

    def test_quorum_unreachable_with_minority(self, partitioned_testbed):
        client = partitioned_testbed.make_client("quorum")
        result = run(partitioned_testbed, client, [Operation.write("x", 1)])
        # With one replica per side of a two-way split, a majority of two is
        # unreachable from either side.
        assert not result.committed

    def test_two_phase_locking_aborts_on_remote_master(self, partitioned_testbed):
        client = partitioned_testbed.make_client("two-phase-locking",
                                                 lock_timeout_ms=300.0)
        remote_key = next(
            key for key in (f"key{i}" for i in range(100))
            if partitioned_testbed.config.cluster_of_server(
                partitioned_testbed.config.master_for(key)
            ) == partitioned_testbed.config.cluster_names[1]
        )
        result = run(partitioned_testbed, client, [Operation.write(remote_key, 1)])
        assert not result.committed


class TestRecoveryAfterHeal:
    def test_non_hat_protocols_recover_after_heal(self):
        testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))
        testbed.partition_regions([["VA"], ["OR"]])
        client = testbed.make_client("quorum")
        blocked = run(testbed, client, [Operation.write("x", 1)])
        assert not blocked.committed
        testbed.heal()
        recovered = run(testbed, client, [Operation.write("x", 1)])
        assert recovered.committed
