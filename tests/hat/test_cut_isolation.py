"""Tests for Item and Predicate Cut Isolation via client-side caching."""

import pytest

from repro.hat.cut_isolation import CutIsolationClient
from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction


@pytest.fixture
def testbed():
    return build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))


def run(testbed, client, operations):
    return testbed.env.run_until_complete(
        client.execute(Transaction(list(operations)))
    )


class TestItemCutIsolation:
    def test_repeated_reads_return_first_value(self, testbed):
        """Fuzzy reads are impossible: the second read is served from the
        per-transaction cache even if another client overwrites the item."""
        reader = CutIsolationClient(testbed.make_client("eventual"))
        writer = testbed.make_client("eventual")
        run(testbed, writer, [Operation.write("x", "v1")])

        # Interleave: reader reads x, writer overwrites x, reader reads x again.
        long_txn = Transaction([Operation.read("x")]
                               + [Operation.read(f"pad{i}") for i in range(30)]
                               + [Operation.read("x")])
        reader_process = reader.execute(long_txn)
        writer_result = testbed.env.run_until_complete(
            writer.execute(Transaction([Operation.write("x", "v2")]))
        )
        assert writer_result.committed
        result = testbed.env.run_until_complete(reader_process)
        x_values = [obs.version.value for obs in result.reads if obs.key == "x"]
        assert len(x_values) == 2
        assert x_values[0] == x_values[1]

    def test_write_overrides_cached_read(self, testbed):
        """A transaction that overwrites an item it read sees its own value."""
        client = CutIsolationClient(testbed.make_client("read-committed"))
        base = testbed.make_client("eventual")
        run(testbed, base, [Operation.write("x", "original")])
        result = run(testbed, client, [
            Operation.read("x"),
            Operation.write("x", "mine"),
            Operation.read("x"),
        ])
        x_values = [obs.version.value for obs in result.reads if obs.key == "x"]
        assert x_values[-1] == "mine"

    def test_saves_rpcs_on_duplicate_reads(self, testbed):
        plain = testbed.make_client("eventual")
        cached = CutIsolationClient(testbed.make_client("eventual"))
        operations = [Operation.read("x"), Operation.read("x"), Operation.read("x")]
        plain_result = run(testbed, plain, operations)
        cached_result = run(testbed, cached, operations)
        assert len(plain_result.reads) == 3
        assert len(cached_result.reads) == 3
        # The cached run contacted the replica once, so it finished faster.
        assert cached_result.latency_ms < plain_result.latency_ms


class TestPredicateCutIsolation:
    def test_repeated_scans_return_same_cut(self, testbed):
        client = CutIsolationClient(testbed.make_client("eventual"), predicate_cut=True)
        seed = testbed.make_client("eventual")
        run(testbed, seed, [Operation.write("p1", 5), Operation.write("p2", 50)])
        predicate = Operation.scan(lambda key, value: isinstance(value, int) and value > 10,
                                   name="gt10")
        result = run(testbed, client, [
            predicate,
            Operation.read("p1"),
            Operation.scan(lambda key, value: isinstance(value, int) and value > 10,
                           name="gt10"),
        ])
        assert len(result.scan_results) == 2
        first = {v.key for v in result.scan_results[0]}
        second = {v.key for v in result.scan_results[1]}
        assert first == second

    def test_protocol_name_reflects_mode(self, testbed):
        assert CutIsolationClient(testbed.make_client("eventual")).protocol_name \
            == "eventual+p-ci"
        assert CutIsolationClient(testbed.make_client("eventual"),
                                  predicate_cut=False).protocol_name == "eventual+i-ci"
