"""Unit tests for server-side admission control (bounded queues + shedding).

The contract under test: a server built with an
:class:`~repro.overload.admission.AdmissionConfig` bounds its request queue,
sheds only foreground (sheddable) kinds, replies to shed requests with an
explicit fast ``Overloaded`` rejection (no worker time consumed), and leaves
background/cleanup traffic untouched.  A server built without one behaves
exactly as before admission control existed.
"""

import pytest

from repro.cluster.node import ServerNode, ServiceCostModel
from repro.errors import OverloadedError
from repro.net.latency import FixedLatencyModel
from repro.net.network import Network
from repro.net.partitions import PartitionManager
from repro.net.topology import Topology
from repro.overload import ADMISSION_POLICIES, FOREGROUND_KINDS, AdmissionConfig
from repro.sim import Environment, RandomStreams


def make_rig(admission=None, concurrency=1, overhead_ms=5.0):
    env = Environment()
    topology = Topology()
    for name in ("server", "client"):
        topology.add_site(name, region="VA")
    network = Network(env, topology, FixedLatencyModel(0.5),
                      streams=RandomStreams(0), partitions=PartitionManager())
    node = ServerNode(env, network, "server",
                      cost_model=ServiceCostModel(
                          request_overhead_ms=overhead_ms,
                          concurrency=concurrency),
                      admission=admission)
    node.register_handler("work", lambda msg: ({"ok": True}, 0.0))
    node.register_handler("background", lambda msg: ({"ok": True}, 0.0))
    network.register("client", lambda msg: None)
    return env, network, node


def sheddable(**kwargs):
    return AdmissionConfig(sheddable_kinds=frozenset({"work"}), **kwargs)


def drain(env, futures):
    """Resolve every future; returns (payloads, rejections)."""
    served, rejected = [], 0
    for future in futures:
        try:
            served.append(env.run_until_complete(future))
        except OverloadedError:
            rejected += 1
    return served, rejected


class TestConfig:
    def test_policies_are_validated(self):
        with pytest.raises(Exception):
            AdmissionConfig(policy="random-early-nope")
        with pytest.raises(Exception):
            AdmissionConfig(max_queue_depth=0)
        for policy in ADMISSION_POLICIES:
            AdmissionConfig(policy=policy)

    def test_lifo_depth_defaults_to_half_the_queue(self):
        config = AdmissionConfig(max_queue_depth=64)
        assert config.lifo_depth == 32
        assert AdmissionConfig(max_queue_depth=64, lifo_depth=5).lifo_depth == 5

    def test_foreground_kinds_are_the_default_shed_set(self):
        config = AdmissionConfig()
        assert config.sheddable_kinds == FOREGROUND_KINDS
        assert config.sheds("ru.put")
        assert not config.sheds("ae.push")
        assert not config.sheds("txn.commit")


class TestDropTail:
    def test_overflow_is_rejected_with_explicit_overload(self):
        # Depth 2 + 1 in service: the 4th and later requests are shed.
        env, network, node = make_rig(sheddable(max_queue_depth=2))
        futures = [network.rpc("client", "server", "work", {})
                   for _ in range(6)]
        served, rejected = drain(env, futures)
        assert len(served) == 3
        assert rejected == 3
        assert node.stats.rejected == 3

    def test_rejection_is_fast_and_costs_no_worker_time(self):
        env, network, node = make_rig(sheddable(max_queue_depth=1),
                                      overhead_ms=50.0)
        futures = [network.rpc("client", "server", "work", {})
                   for _ in range(3)]
        # The shed reply comes back after one network round trip (1 ms),
        # long before the 50 ms-per-request queue could have drained.
        with pytest.raises(OverloadedError):
            env.run_until_complete(futures[2])
        assert env.now < 50.0
        served, _rejected = drain(env, futures[:2])
        # Worker time was spent only on the served requests — rejections
        # consumed none.
        assert node.stats.busy_ms == pytest.approx(50.0 * len(served))
        assert len(served) + node.stats.rejected == 3

    def test_background_kinds_are_never_shed(self):
        env, network, node = make_rig(sheddable(max_queue_depth=1))
        futures = [network.rpc("client", "server", "background", {})
                   for _ in range(8)]
        served, rejected = drain(env, futures)
        assert len(served) == 8 and rejected == 0
        assert node.stats.rejected == 0

    def test_no_admission_config_means_unbounded_fifo(self):
        env, network, node = make_rig(admission=None)
        futures = [network.rpc("client", "server", "work", {})
                   for _ in range(50)]
        served, rejected = drain(env, futures)
        assert len(served) == 50 and rejected == 0


class TestAdaptiveLifo:
    def test_evicts_oldest_sheddable_for_the_newcomer(self):
        env, network, node = make_rig(
            sheddable(max_queue_depth=2, policy="adaptive-lifo"))
        futures = [network.rpc("client", "server", "work", {})
                   for _ in range(5)]
        served, rejected = drain(env, futures)
        # The queue stays full (3 served: 1 in service + depth 2), but the
        # *oldest queued* requests were evicted in favour of newcomers.
        assert len(served) == 3
        assert rejected == 2
        assert node.stats.rejected == 2

    def test_newest_first_service_under_pressure(self):
        env, network, node = make_rig(
            sheddable(max_queue_depth=8, lifo_depth=1,
                      policy="adaptive-lifo"),
            overhead_ms=5.0)
        order = []
        node.register_handler("tagged",
                              lambda msg: (order.append(msg.payload["n"])
                                           or ({"ok": True}, 0.0)))
        config = node.admission
        assert config.policy == "adaptive-lifo"
        futures = [network.rpc("client", "server", "tagged", {"n": n})
                   for n in range(4)]
        for future in futures:
            env.run_until_complete(future)
        # Request 0 enters service immediately; above lifo_depth the queue
        # serves newest-first, so 3 (the freshest) precedes 1.
        assert order[0] == 0
        assert order.index(3) < order.index(1)


class TestCodel:
    def test_stale_requests_dropped_at_dequeue(self):
        # One worker at 40 ms per request, codel target 5 ms: by the time
        # the first request finishes, the queued ones have waited 40 ms and
        # are dropped at dequeue instead of served.
        env, network, node = make_rig(
            sheddable(max_queue_depth=16, policy="codel",
                      codel_target_ms=5.0),
            overhead_ms=40.0)
        futures = [network.rpc("client", "server", "work", {})
                   for _ in range(4)]
        served, rejected = drain(env, futures)
        assert len(served) == 1
        assert rejected == 3
        assert node.stats.rejected == 3

    def test_fresh_requests_survive(self):
        env, network, node = make_rig(
            sheddable(max_queue_depth=16, policy="codel",
                      codel_target_ms=5.0),
            overhead_ms=1.0)
        futures = [network.rpc("client", "server", "work", {})
                   for _ in range(4)]
        served, rejected = drain(env, futures)
        assert len(served) == 4 and rejected == 0
