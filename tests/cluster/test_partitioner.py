"""Unit tests for hash partitioning."""

import pytest

from repro.cluster.partitioner import HashPartitioner
from repro.errors import ReproError


class TestHashPartitioner:
    def test_requires_owners(self):
        with pytest.raises(ReproError):
            HashPartitioner([])

    def test_deterministic_assignment(self):
        owners = ["s0", "s1", "s2"]
        a = HashPartitioner(owners)
        b = HashPartitioner(owners)
        for key in (f"user{i}" for i in range(100)):
            assert a.owner_for(key) == b.owner_for(key)

    def test_owner_is_member(self):
        partitioner = HashPartitioner(["s0", "s1", "s2"])
        for key in (f"user{i}" for i in range(50)):
            assert partitioner.owner_for(key) in partitioner.owners

    def test_single_owner_gets_everything(self):
        partitioner = HashPartitioner(["only"])
        assert all(partitioner.owner_for(f"k{i}") == "only" for i in range(20))

    def test_distribution_is_roughly_balanced(self):
        partitioner = HashPartitioner([f"s{i}" for i in range(4)])
        counts = partitioner.keys_per_owner([f"user{i}" for i in range(4000)])
        assert set(counts) == {f"s{i}" for i in range(4)}
        assert max(counts.values()) < 2 * min(counts.values())

    def test_key_hash_stability(self):
        # The hash must not depend on PYTHONHASHSEED: fixed expected bucket.
        assert HashPartitioner.key_hash("user1") == HashPartitioner.key_hash("user1")
        assert HashPartitioner.key_hash("user1") != HashPartitioner.key_hash("user2")

    def test_partition_index_in_range(self):
        partitioner = HashPartitioner(["a", "b", "c"])
        for key in (f"x{i}" for i in range(100)):
            assert 0 <= partitioner.partition_index(key) < 3
