"""Unit tests for cluster configuration and replica placement."""

import pytest

from repro.cluster.config import Cluster, ClusterConfig, build_cluster_config
from repro.errors import ReproError


@pytest.fixture
def config():
    return build_cluster_config(["VA", "OR", "IR"], servers_per_cluster=3)


class TestCluster:
    def test_requires_servers(self):
        with pytest.raises(ReproError):
            Cluster(name="empty", region="VA", servers=[])

    def test_owner_is_one_of_the_servers(self):
        cluster = Cluster(name="c", region="VA", servers=["a", "b", "c"])
        assert cluster.owner_for("user1") in {"a", "b", "c"}


class TestClusterConfig:
    def test_requires_clusters(self):
        with pytest.raises(ReproError):
            ClusterConfig([])

    def test_duplicate_cluster_names_rejected(self):
        clusters = [Cluster("c", "VA", ["a"]), Cluster("c", "OR", ["b"])]
        with pytest.raises(ReproError):
            ClusterConfig(clusters)

    def test_server_in_two_clusters_rejected(self):
        clusters = [Cluster("c1", "VA", ["shared"]), Cluster("c2", "OR", ["shared"])]
        with pytest.raises(ReproError):
            ClusterConfig(clusters)

    def test_one_replica_per_cluster(self, config):
        replicas = config.replicas_for("user42")
        assert len(replicas) == 3
        clusters = {config.cluster_of_server(r) for r in replicas}
        assert len(clusters) == 3

    def test_replication_factor(self, config):
        assert config.replication_factor() == 3

    def test_local_replica_is_in_cluster(self, config):
        name = config.cluster_names[0]
        replica = config.local_replica_for("user42", name)
        assert config.cluster_of_server(replica) == name

    def test_master_is_a_replica(self, config):
        for key in (f"user{i}" for i in range(30)):
            assert config.master_for(key) in config.replicas_for(key)

    def test_masters_spread_across_clusters(self, config):
        masters = {config.cluster_of_server(config.master_for(f"user{i}"))
                   for i in range(200)}
        assert len(masters) > 1  # not all keys mastered in one datacenter

    def test_peer_replicas_excludes_self(self, config):
        key = "user7"
        replicas = config.replicas_for(key)
        peers = config.peer_replicas(key, replicas[0])
        assert replicas[0] not in peers
        assert len(peers) == 2

    def test_unknown_lookups_rejected(self, config):
        with pytest.raises(ReproError):
            config.cluster("nope")
        with pytest.raises(ReproError):
            config.cluster_of_server("nope")

    def test_build_cluster_config_validation(self):
        with pytest.raises(ReproError):
            build_cluster_config(["VA"], servers_per_cluster=0)

    def test_all_servers_enumeration(self, config):
        assert len(config.all_servers) == 9
        assert len(set(config.all_servers)) == 9
