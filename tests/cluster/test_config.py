"""Unit tests for cluster configuration and replica placement."""

import pytest

from repro.cluster.config import Cluster, ClusterConfig, build_cluster_config
from repro.errors import ReproError


@pytest.fixture
def config():
    return build_cluster_config(["VA", "OR", "IR"], servers_per_cluster=3)


class TestCluster:
    def test_requires_servers(self):
        with pytest.raises(ReproError):
            Cluster(name="empty", region="VA", servers=[])

    def test_owner_is_one_of_the_servers(self):
        cluster = Cluster(name="c", region="VA", servers=["a", "b", "c"])
        assert cluster.owner_for("user1") in {"a", "b", "c"}


class TestClusterConfig:
    def test_requires_clusters(self):
        with pytest.raises(ReproError):
            ClusterConfig([])

    def test_duplicate_cluster_names_rejected(self):
        clusters = [Cluster("c", "VA", ["a"]), Cluster("c", "OR", ["b"])]
        with pytest.raises(ReproError):
            ClusterConfig(clusters)

    def test_server_in_two_clusters_rejected(self):
        clusters = [Cluster("c1", "VA", ["shared"]), Cluster("c2", "OR", ["shared"])]
        with pytest.raises(ReproError):
            ClusterConfig(clusters)

    def test_one_replica_per_cluster(self, config):
        replicas = config.replicas_for("user42")
        assert len(replicas) == 3
        clusters = {config.cluster_of_server(r) for r in replicas}
        assert len(clusters) == 3

    def test_replication_factor(self, config):
        assert config.replication_factor() == 3

    def test_local_replica_is_in_cluster(self, config):
        name = config.cluster_names[0]
        replica = config.local_replica_for("user42", name)
        assert config.cluster_of_server(replica) == name

    def test_master_is_a_replica(self, config):
        for key in (f"user{i}" for i in range(30)):
            assert config.master_for(key) in config.replicas_for(key)

    def test_masters_spread_across_clusters(self, config):
        masters = {config.cluster_of_server(config.master_for(f"user{i}"))
                   for i in range(200)}
        assert len(masters) > 1  # not all keys mastered in one datacenter

    def test_peer_replicas_excludes_self(self, config):
        key = "user7"
        replicas = config.replicas_for(key)
        peers = config.peer_replicas(key, replicas[0])
        assert replicas[0] not in peers
        assert len(peers) == 2

    def test_unknown_lookups_rejected(self, config):
        with pytest.raises(ReproError):
            config.cluster("nope")
        with pytest.raises(ReproError):
            config.cluster_of_server("nope")

    def test_build_cluster_config_validation(self):
        with pytest.raises(ReproError):
            build_cluster_config(["VA"], servers_per_cluster=0)

    def test_all_servers_enumeration(self, config):
        assert len(config.all_servers) == 9
        assert len(set(config.all_servers)) == 9


class TestPlacementCompat:
    """Static scenarios must keep the paper's exact modulo placement."""

    def test_default_placement_is_modulo(self, config):
        for cluster in config.clusters:
            assert cluster.placement == "modulo"

    def test_modulo_placement_is_byte_identical_to_the_hash_rule(self, config):
        # Pins the historical routing rule so the ring refactor can never
        # shift static figure sweeps: owner == servers[sha1(key) % n].
        from repro.cluster.partitioner import _stable_key_hash

        for cluster in config.clusters:
            for key in (f"user{i}" for i in range(100)):
                expected = cluster.servers[
                    _stable_key_hash(key) % len(cluster.servers)]
                assert cluster.owner_for(key) == expected

    def test_ring_placement_is_selectable(self):
        config = build_cluster_config(["VA", "OR"], 3, placement="ring")
        for cluster in config.clusters:
            assert cluster.placement == "ring"
            for key in (f"user{i}" for i in range(50)):
                assert cluster.owner_for(key) in cluster.servers

    def test_unknown_placement_rejected(self):
        with pytest.raises(ReproError):
            Cluster(name="c", region="VA", servers=["a"], placement="vibes")


class TestInvalidation:
    """Satellite: placement memos must flush whenever topology changes."""

    def test_two_sequential_configs_in_one_process_route_correctly(self):
        # The key-hash memo is process-wide; per-topology caches are not —
        # two configs with different server lists must never cross-route.
        keys = [f"user{i}" for i in range(200)]
        for servers_per_cluster in (2, 3, 5):
            config = build_cluster_config(["VA", "OR"], servers_per_cluster)
            for key in keys:
                for cluster in config.clusters:
                    assert cluster.owner_for(key) in cluster.servers
                assert config.master_for(key) in config.all_servers

    def test_add_server_invalidates_every_cache(self):
        config = build_cluster_config(["VA", "OR"], 2, placement="ring")
        keys = [f"user{i}" for i in range(300)]
        # Warm every memo path.
        for key in keys:
            config.replicas_for(key)
            config.master_for(key)
            config.peer_replicas(key, config.all_servers[0])
        before = {key: config.cluster("cluster0-VA").owner_for(key)
                  for key in keys}
        epoch = config.epoch
        config.add_server("cluster0-VA", "cluster0-VA-s9")
        assert config.epoch > epoch
        moved = [key for key in keys
                 if config.cluster("cluster0-VA").owner_for(key) != before[key]]
        assert moved, "the new server took no load — caches were stale"
        for key in moved:
            assert config.cluster("cluster0-VA").owner_for(key) == "cluster0-VA-s9"
            assert "cluster0-VA-s9" in config.replicas_for(key)
            assert config.master_for(key) in config.replicas_for(key)
        assert config.cluster_of_server("cluster0-VA-s9") == "cluster0-VA"

    def test_remove_server_invalidates_every_cache(self):
        config = build_cluster_config(["VA", "OR"], 3, placement="ring")
        keys = [f"user{i}" for i in range(300)]
        for key in keys:
            config.replicas_for(key)
            config.master_for(key)
        victim = config.cluster("cluster0-VA").servers[0]
        config.remove_server(victim)
        for key in keys:
            assert victim not in config.replicas_for(key)
            assert config.master_for(key) != victim
        with pytest.raises(ReproError):
            config.cluster_of_server(victim)

    def test_explicit_invalidate_bumps_epoch_and_clears_memos(self, config):
        key = "user1"
        config.replicas_for(key)
        assert key in config._replicas_cache
        epoch = config.epoch
        config.invalidate()
        assert config.epoch == epoch + 1
        assert not config._replicas_cache
        assert not config._master_cache
        assert not config._peers_cache

    def test_duplicate_and_last_server_guards(self):
        config = build_cluster_config(["VA"], 1, placement="ring")
        server = config.all_servers[0]
        with pytest.raises(ReproError):
            config.add_server("cluster0-VA", server)
        with pytest.raises(ReproError):
            config.remove_server(server)


class TestMasterRedesignation:
    """Satellite: what happens to a key's master when its node goes away.

    Mastership is a placement fact: a *crash* leaves the master designated
    (and the key explicitly unavailable to master-routed clients) until the
    node recovers; only a *membership* change re-designates, deterministic
    from the key hash over the surviving replicas.
    """

    def test_departed_master_is_redesignated(self):
        config = build_cluster_config(["VA", "OR"], 3, placement="ring")
        victim = config.cluster("cluster0-VA").servers[0]
        mastered = [key for key in (f"user{i}" for i in range(300))
                    if config.master_for(key) == victim]
        assert mastered, "no keys mastered on the victim — widen the sample"
        config.remove_server(victim)
        for key in mastered:
            new_master = config.master_for(key)
            assert new_master != victim
            assert new_master in config.replicas_for(key)

    def test_all_clients_agree_on_the_new_master(self):
        # Re-designation needs no coordination: the same deterministic rule
        # over the same surviving replica list yields the same answer.
        a = build_cluster_config(["VA", "OR"], 3, placement="ring")
        b = build_cluster_config(["VA", "OR"], 3, placement="ring")
        victim = a.cluster("cluster0-VA").servers[1]
        a.remove_server(victim)
        b.remove_server(victim)
        for key in (f"user{i}" for i in range(200)):
            assert a.master_for(key) == b.master_for(key)

    def test_crash_does_not_redesignate(self, execute):
        # A crashed-but-configured master keeps the key unavailable: the
        # liveness fault is the *network's* problem, not placement's.
        from repro.hat.testbed import Scenario, build_testbed

        testbed = build_testbed(Scenario(regions=["VA", "OR"],
                                         servers_per_cluster=2,
                                         fixed_latency_ms=1.0))
        config = testbed.config
        key = "user42"
        master = config.master_for(key)
        testbed.servers[master].crash()
        assert config.master_for(key) == master  # still designated
        from repro.hat.transaction import Operation, Transaction

        client = testbed.make_client(
            "master", home_cluster=config.cluster_of_server(master),
            rpc_timeout_ms=200.0)
        result = execute(testbed, client,
                         Transaction([Operation.write(key, 1)]))
        assert not result.committed  # explicit unavailability
