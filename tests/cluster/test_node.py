"""Unit tests for the server node's queueing and dispatch."""

import pytest

from repro.cluster.node import ServerNode, ServiceCostModel
from repro.errors import ReproError
from repro.net.latency import FixedLatencyModel
from repro.net.network import Network
from repro.net.partitions import PartitionManager
from repro.net.topology import Topology
from repro.sim import Environment, RandomStreams


def make_rig(concurrency=1, overhead_ms=1.0):
    env = Environment()
    topology = Topology()
    for name in ("server", "client"):
        topology.add_site(name, region="VA")
    network = Network(env, topology, FixedLatencyModel(0.5),
                      streams=RandomStreams(0), partitions=PartitionManager())
    node = ServerNode(env, network, "server",
                      cost_model=ServiceCostModel(request_overhead_ms=overhead_ms,
                                                  concurrency=concurrency))
    network.register("client", lambda msg: None)
    return env, network, node


class TestServerNode:
    def test_handler_reply_round_trip(self):
        env, network, node = make_rig()
        node.register_handler("echo", lambda msg: ({"echo": msg.payload}, 0.0))
        future = network.rpc("client", "server", "echo", {"n": 1})
        assert env.run_until_complete(future) == {"echo": {"n": 1}}
        assert node.stats.requests == 1 and node.stats.replies == 1

    def test_duplicate_handler_rejected(self):
        _env, _network, node = make_rig()
        node.register_handler("x", lambda msg: (None, 0.0))
        with pytest.raises(ReproError):
            node.register_handler("x", lambda msg: (None, 0.0))

    def test_unknown_kind_gets_error_reply(self):
        env, network, node = make_rig()
        future = network.rpc("client", "server", "mystery", {})
        reply = env.run_until_complete(future)
        assert "error" in reply

    def test_service_time_includes_extra_cost(self):
        env, network, node = make_rig(overhead_ms=1.0)
        node.register_handler("slow", lambda msg: ({"ok": True}, 10.0))
        future = network.rpc("client", "server", "slow", {})
        env.run_until_complete(future)
        # 0.5 ms there + 11 ms service + 0.5 ms back.
        assert env.now == pytest.approx(12.0)

    def test_single_worker_serializes_requests(self):
        env, network, node = make_rig(concurrency=1, overhead_ms=5.0)
        node.register_handler("work", lambda msg: ({"ok": True}, 0.0))
        futures = [network.rpc("client", "server", "work", {}) for _ in range(3)]
        for future in futures:
            env.run_until_complete(future)
        # Three requests at 5 ms each on one worker finish no earlier than 15 ms
        # service plus one network round trip.
        assert env.now >= 15.0
        assert node.stats.queue_wait_ms > 0

    def test_concurrency_processes_in_parallel(self):
        env, network, node = make_rig(concurrency=4, overhead_ms=5.0)
        node.register_handler("work", lambda msg: ({"ok": True}, 0.0))
        futures = [network.rpc("client", "server", "work", {}) for _ in range(3)]
        for future in futures:
            env.run_until_complete(future)
        assert env.now == pytest.approx(6.0)  # all three overlap

    def test_crash_drops_requests_and_recover_restores(self):
        env, network, node = make_rig()
        node.register_handler("echo", lambda msg: ({"ok": True}, 0.0))
        node.crash()
        dead = network.rpc("client", "server", "echo", {}, timeout_ms=20.0)
        with pytest.raises(Exception):
            env.run_until_complete(dead)
        node.recover()
        alive = network.rpc("client", "server", "echo", {})
        assert env.run_until_complete(alive) == {"ok": True}

    def test_utilization_bounded(self):
        env, network, node = make_rig(concurrency=2, overhead_ms=2.0)
        node.register_handler("work", lambda msg: ({"ok": True}, 0.0))
        futures = [network.rpc("client", "server", "work", {}) for _ in range(5)]
        for future in futures:
            env.run_until_complete(future)
        assert 0.0 < node.utilization(env.now) <= 1.0

    def test_payload_size_adds_cost(self):
        env, network, node = make_rig(overhead_ms=1.0)
        node.register_handler("put", lambda msg: ({"ok": True}, 0.0))
        small = network.rpc("client", "server", "put", {"size_bytes": 0})
        env.run_until_complete(small)
        small_time = env.now
        big = network.rpc("client", "server", "put", {"size_bytes": 1024 * 100})
        env.run_until_complete(big)
        assert env.now - small_time > small_time
