"""Unit tests for the client node (routing, timestamps, stickiness)."""

import pytest

from repro.cluster.client import ClientNode
from repro.cluster.config import build_cluster_config
from repro.errors import ReproError
from repro.net.latency import FixedLatencyModel
from repro.net.network import Network
from repro.net.partitions import PartitionManager
from repro.net.topology import Topology
from repro.sim import Environment, RandomStreams


@pytest.fixture
def rig():
    env = Environment()
    config = build_cluster_config(["VA", "OR"], servers_per_cluster=2)
    topology = Topology()
    for cluster in config.clusters:
        for server in cluster.servers:
            topology.add_site(server, region=cluster.region)
    topology.add_site("client-0", region="VA")
    network = Network(env, topology, FixedLatencyModel(1.0),
                      streams=RandomStreams(0), partitions=PartitionManager())
    node = ClientNode(env, network, config, "client-0",
                      home_cluster=config.cluster_names[0])
    return env, network, config, node


class TestClientNode:
    def test_unknown_home_cluster_rejected(self, rig):
        env, network, config, _node = rig
        with pytest.raises(ReproError):
            ClientNode(env, network, config, "client-x", home_cluster="nope")

    def test_timestamps_are_unique_and_increasing(self, rig):
        _env, _network, _config, node = rig
        stamps = [node.next_timestamp() for _ in range(10)]
        assert len(set(stamps)) == 10
        assert stamps == sorted(stamps)
        assert all(ts.client_id == node.client_id for ts in stamps)

    def test_sticky_replica_is_in_home_cluster(self, rig):
        _env, _network, config, node = rig
        home = config.cluster_names[0]
        for key in (f"user{i}" for i in range(20)):
            assert config.cluster_of_server(node.sticky_replica(key)) == home

    def test_all_replicas_one_per_cluster(self, rig):
        _env, _network, config, node = rig
        replicas = node.all_replicas("user1")
        assert len(replicas) == 2
        assert {config.cluster_of_server(r) for r in replicas} == set(config.cluster_names)

    def test_master_is_a_replica(self, rig):
        _env, _network, _config, node = rig
        assert node.master_replica("user1") in node.all_replicas("user1")

    def test_reachable_replicas_respects_partitions(self, rig):
        env, network, config, node = rig
        key = "user1"
        all_replicas = node.all_replicas(key)
        remote = [r for r in all_replicas
                  if config.cluster_of_server(r) != node.home_cluster]
        local_sites = [node.name] + [
            r for r in all_replicas if config.cluster_of_server(r) == node.home_cluster
        ]
        network.partitions.partition([local_sites, remote])
        reachable = node.reachable_replicas(key)
        assert set(reachable) == set(local_sites) - {node.name}

    def test_distinct_client_ids(self, rig):
        env, network, config, node = rig
        topology = network.topology
        topology.add_site("client-1", region="VA")
        other = ClientNode(env, network, config, "client-1",
                           home_cluster=config.cluster_names[0])
        assert other.client_id != node.client_id
