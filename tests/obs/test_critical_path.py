"""Unit tests for the critical-path latency decomposition."""

import pytest

from repro.obs.critical_path import (
    SEGMENTS,
    aggregate_stack,
    decompose,
    percentile,
)
from repro.obs.trace import Tracer


def _trace():
    tracer = Tracer()
    root = tracer.start_span("txn", "txn", None, "client", 0.0)
    return tracer, root


def _rpc(tracer, root, start, end, status="ok"):
    span = tracer.start_span("rpc", "rpc", tracer.context(root), "client",
                             start)
    tracer.finish(span, end, status=status)
    return span


def _server(tracer, parent, start, end, service_ms, queue_wait_ms=0.0):
    span = tracer.start_span("srv", "server", tracer.context(parent),
                             "server-0", start)
    span.attrs["service_ms"] = service_ms
    span.attrs["queue_wait_ms"] = queue_wait_ms
    tracer.finish(span, end)
    return span


class TestDecompose:
    def test_buckets_sum_exactly_to_latency(self):
        tracer, root = _trace()
        rpc = _rpc(tracer, root, 1.0, 7.0)
        _server(tracer, rpc, 2.0, 6.0, service_ms=3.0, queue_wait_ms=1.0)
        tracer.finish(root, 10.0)
        totals = decompose(root, tracer.trace(root.trace_id)[1:])
        assert sum(totals.values()) == pytest.approx(10.0)
        assert set(totals) == set(SEGMENTS)

    def test_server_time_wins_over_rpc_wire_time(self):
        tracer, root = _trace()
        rpc = _rpc(tracer, root, 0.0, 10.0)
        _server(tracer, rpc, 2.0, 8.0, service_ms=6.0)
        tracer.finish(root, 10.0)
        totals = decompose(root, tracer.trace(root.trace_id)[1:])
        assert totals["service"] == pytest.approx(6.0)
        assert totals["rtt"] == pytest.approx(4.0)  # wire time minus service

    def test_queue_wait_claims_the_admission_interval(self):
        tracer, root = _trace()
        rpc = _rpc(tracer, root, 0.0, 10.0)
        _server(tracer, rpc, 1.0, 9.0, service_ms=4.0, queue_wait_ms=3.0)
        tracer.finish(root, 10.0)
        totals = decompose(root, tracer.trace(root.trace_id)[1:])
        assert totals["queueing"] == pytest.approx(3.0)
        assert totals["service"] == pytest.approx(4.0)

    def test_lock_wait_outranks_everything(self):
        tracer, root = _trace()
        rpc = _rpc(tracer, root, 0.0, 10.0)
        _server(tracer, rpc, 1.0, 9.0, service_ms=8.0)
        lock = tracer.start_span("lock-wait:x", "lock", tracer.context(rpc),
                                 "server-0", 2.0)
        tracer.finish(lock, 7.0)
        tracer.finish(root, 10.0)
        totals = decompose(root, tracer.trace(root.trace_id)[1:])
        assert totals["lock_wait"] == pytest.approx(5.0)
        assert totals["service"] == pytest.approx(3.0)

    def test_timed_out_rpc_counts_as_retry(self):
        tracer, root = _trace()
        _rpc(tracer, root, 0.0, 5.0, status="timeout")
        _rpc(tracer, root, 5.0, 8.0)
        tracer.finish(root, 8.0)
        totals = decompose(root, tracer.trace(root.trace_id)[1:])
        assert totals["retry"] == pytest.approx(5.0)
        assert totals["rtt"] == pytest.approx(3.0)

    def test_unclaimed_time_is_client(self):
        tracer, root = _trace()
        _rpc(tracer, root, 2.0, 4.0)
        tracer.finish(root, 10.0)
        totals = decompose(root, tracer.trace(root.trace_id)[1:])
        assert totals["client"] == pytest.approx(8.0)

    def test_concurrent_rpcs_are_not_double_counted(self):
        tracer, root = _trace()
        _rpc(tracer, root, 0.0, 6.0)
        _rpc(tracer, root, 2.0, 8.0)  # quorum fan-out overlap
        tracer.finish(root, 8.0)
        totals = decompose(root, tracer.trace(root.trace_id)[1:])
        assert totals["rtt"] == pytest.approx(8.0)
        assert sum(totals.values()) == pytest.approx(8.0)

    def test_child_intervals_clip_to_the_root(self):
        tracer, root = _trace()
        root.start_ms = 2.0
        _rpc(tracer, root, 0.0, 10.0)
        tracer.finish(root, 6.0)
        totals = decompose(root, tracer.trace(root.trace_id)[1:])
        assert totals["rtt"] == pytest.approx(4.0)
        assert sum(totals.values()) == pytest.approx(4.0)

    def test_zero_length_root_yields_zero_buckets(self):
        tracer, root = _trace()
        tracer.finish(root, 0.0)
        totals = decompose(root, [])
        assert all(v == 0.0 for v in totals.values())


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.5) == 51
        assert percentile(values, 0.99) == 100
        assert percentile(values, 0.0) == 1

    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0


class TestAggregateStack:
    def test_empty_shape(self):
        aggregate = aggregate_stack([])
        assert aggregate["transactions"] == 0
        assert set(aggregate["mean_breakdown_ms"]) == set(SEGMENTS)

    def test_mean_and_p99(self):
        breakdowns = [
            (4.0, {**{s: 0.0 for s in SEGMENTS}, "rtt": 4.0}),
            (10.0, {**{s: 0.0 for s in SEGMENTS}, "service": 10.0}),
        ]
        aggregate = aggregate_stack(breakdowns)
        assert aggregate["transactions"] == 2
        assert aggregate["mean_latency_ms"] == pytest.approx(7.0)
        assert aggregate["p99_latency_ms"] == pytest.approx(10.0)
        # The p99 transaction's own breakdown, not a blend.
        assert aggregate["p99_breakdown_ms"]["service"] == pytest.approx(10.0)
        assert aggregate["p99_breakdown_ms"]["rtt"] == 0.0
