"""End-to-end trace propagation through failover and rebalance.

The tracing tentpole's hardest claim is that context survives the messy
paths: a session client failing over to another replica mid-transaction,
and a key handed off to a joining server mid-write.  Each case must yield
ONE connected trace — every span reachable from the transaction root —
with the fault annotated on the spans that overlapped it.
"""

from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction


def _run(testbed, client, operations):
    return testbed.env.run_until_complete(
        client.execute(Transaction(list(operations))))


def _assert_connected(spans):
    """Every span of the trace hangs off the single root."""
    assert len({span.trace_id for span in spans}) == 1
    ids = {span.span_id for span in spans}
    roots = [span for span in spans if span.parent_id is None]
    assert len(roots) == 1
    for span in spans:
        if span.parent_id is not None:
            assert span.parent_id in ids, (span.name, span.parent_id)


class TestFailoverPropagation:
    def test_session_failover_mid_transaction_stays_one_trace(self):
        scenario = Scenario(regions=["VA", "OR"], servers_per_cluster=2,
                            fixed_latency_ms=1.0, seed=0, tracing=True)
        testbed = build_testbed(scenario)
        tracer = testbed.tracer
        client = testbed.make_client("causal")
        cluster = client.node.home_cluster
        servers = testbed.config.cluster(cluster).servers
        keys = [f"key{i}" for i in range(64)]
        owners = {k: testbed.config.local_replica_for(k, cluster)
                  for k in keys}
        key_a = next(k for k in keys if owners[k] == servers[0])
        key_b = next(k for k in keys if owners[k] == servers[1])

        # Seed both keys and let anti-entropy replicate them to the other
        # region, so the post-failover replica is not stale.
        result = _run(testbed, client, [Operation.write(key_a, "va"),
                                        Operation.write(key_b, "vb")])
        assert result.committed
        testbed.run(300.0)

        # Isolate key_a's sticky replica while the transaction is mid-way
        # through its RPC to the *other* server: the next operation must
        # fail over, and the trace must not break.  Announce the fault to
        # the tracer the same way the nemesis narration does.
        def _isolate():
            testbed.network.partitions.isolate(servers[0])
            tracer.on_fault("isolate", (servers[0],), testbed.env.now)

        testbed.env.schedule(1.0, _isolate)
        result = _run(testbed, client, [Operation.read(key_b),
                                        Operation.read(key_a)])
        assert result.committed, result.error
        tracer.finalize(testbed.env.now)

        root = tracer.transaction_span(result.txn_id)
        assert root is not None and root.status == "ok"
        spans = tracer.trace(root.trace_id)
        _assert_connected(spans)

        failovers = [s for s in spans if s.name == "failover"]
        assert failovers, [s.name for s in spans]
        event = failovers[0]
        assert event.attrs["key"] == key_a
        assert event.attrs["from"] == servers[0]
        assert event.attrs["to"] != servers[0]

        # The trace shows work on both sides of the failover: the healthy
        # replica served key_b, the fallback replica served key_a.
        destinations = {s.attrs.get("dst") for s in spans if s.kind == "rpc"}
        assert servers[1] in destinations
        assert event.attrs["to"] in destinations

        # The isolation window stamps the spans that overlapped it.
        windows = [w for w in tracer.fault_windows if w.kind == "isolate"]
        assert len(windows) == 1
        assert windows[0].window_id in root.faults


class TestRebalancePropagation:
    def test_handoff_mid_write_yields_one_annotated_trace(self):
        scenario = Scenario(regions=["VA", "OR"], servers_per_cluster=2,
                            fixed_latency_ms=1.0, seed=0, placement="ring",
                            virtual_nodes=32, tracing=True)
        testbed = build_testbed(scenario)
        tracer = testbed.tracer
        client = testbed.make_client("eventual")
        cluster = client.node.home_cluster

        testbed.env.schedule(
            20.0, lambda: testbed.membership.scale_out(cluster))
        results = []
        while testbed.env.now < 400.0:
            results.append(_run(testbed, client, [
                Operation.write(f"hot{len(results) % 8}", len(results)),
                Operation.read(f"hot{len(results) % 8}"),
            ]))
        assert all(r.committed for r in results)
        tracer.finalize(testbed.env.now)

        joins = [r for r in testbed.membership.records if r.kind == "join"]
        assert joins and joins[0].done

        windows = [w for w in tracer.fault_windows if w.kind == "handoff"]
        assert len(windows) == 1
        window = windows[0]
        assert window.end_ms is not None and window.end_ms > window.start_ms
        assert cluster in window.targets

        # At least one transaction ran inside the handoff window, and its
        # span carries the window id.
        annotated = [s for s in tracer.spans
                     if s.kind == "txn" and window.window_id in s.faults]
        assert annotated, (window.start_ms, window.end_ms)

        # That transaction's trace is still a single connected tree with
        # real server-side work in it.
        spans = tracer.trace(annotated[0].trace_id)
        _assert_connected(spans)
        assert any(s.kind == "rpc" for s in spans)
        assert any(s.kind == "server" for s in spans)
