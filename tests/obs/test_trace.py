"""Unit tests for the tracing core: spans, contexts, and fault windows."""

from repro.obs.trace import FaultWindow, Span, TraceContext, Tracer


class TestSpanIdentity:
    def test_ids_are_tracer_local_and_start_at_one(self):
        tracer = Tracer()
        first = tracer.start_span("a", "txn", None, "site", 0.0)
        second = Tracer().start_span("b", "txn", None, "site", 0.0)
        assert first.span_id == 1 and first.trace_id == 1
        assert second.span_id == 1 and second.trace_id == 1

    def test_parentless_span_starts_a_fresh_trace(self):
        tracer = Tracer()
        a = tracer.start_span("a", "txn", None, "s", 0.0)
        b = tracer.start_span("b", "ae", None, "s", 1.0)
        assert a.trace_id != b.trace_id
        assert a.parent_id is None and b.parent_id is None

    def test_child_inherits_trace_and_parent(self):
        tracer = Tracer()
        root = tracer.start_span("root", "txn", None, "s", 0.0)
        child = tracer.start_span("rpc", "rpc", tracer.context(root), "s", 1.0)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_finish_sets_end_and_status(self):
        tracer = Tracer()
        span = tracer.start_span("rpc", "rpc", None, "s", 2.0)
        tracer.finish(span, 5.0, status="timeout")
        assert span.end_ms == 5.0 and span.status == "timeout"
        assert span.duration_ms == 3.0

    def test_event_is_instantaneous(self):
        tracer = Tracer()
        root = tracer.start_span("root", "txn", None, "s", 0.0)
        event = tracer.event("failover", tracer.context(root), "s", 4.0)
        assert event.kind == "event"
        assert event.start_ms == event.end_ms == 4.0
        assert event.trace_id == root.trace_id

    def test_as_dict_is_json_shaped(self):
        tracer = Tracer()
        span = tracer.start_span("x", "server", None, "s", 1.0)
        span.attrs["queue_wait_ms"] = 0.5
        payload = span.as_dict()
        assert payload["span_id"] == 1
        assert payload["end_ms"] == 1.0  # unfinished falls back to start
        assert payload["attrs"] == {"queue_wait_ms": 0.5}


class TestTransactions:
    def test_begin_and_finish_roundtrip(self):
        tracer = Tracer()
        tracer.begin_transaction(7, "causal", "client-0", 1.0, label="neworder")
        tracer.finish_transaction(7, 9.0, committed=True, remote_rpcs=2)
        span = tracer.transaction_span(7)
        assert span.name == "txn:causal" and span.kind == "txn"
        assert span.status == "ok"
        assert span.attrs["label"] == "neworder"
        assert span.attrs["committed"] is True
        assert span.attrs["remote_rpcs"] == 2

    def test_aborted_transaction_records_error(self):
        tracer = Tracer()
        tracer.begin_transaction(1, "mav", "c", 0.0)
        tracer.finish_transaction(1, 2.0, committed=False, error="timeout")
        span = tracer.transaction_span(1)
        assert span.status == "aborted" and span.attrs["error"] == "timeout"

    def test_finish_of_unknown_txn_is_a_noop(self):
        Tracer().finish_transaction(99, 1.0, committed=True)


class TestFaultWindows:
    def test_partition_opens_and_heal_closes(self):
        tracer = Tracer()
        tracer.on_fault("partition", ("VA", "OR"), 10.0, "split")
        tracer.on_fault("heal", (), 30.0)
        (window,) = tracer.fault_windows
        assert window.kind == "partition"
        assert window.start_ms == 10.0 and window.end_ms == 30.0

    def test_clear_partition_also_closes_partitions(self):
        tracer = Tracer()
        tracer.on_fault("partition", ("VA", "OR"), 5.0)
        tracer.on_fault("clear-partition", (), 15.0)
        assert tracer.fault_windows[0].end_ms == 15.0

    def test_targeted_closer_matches_targets(self):
        tracer = Tracer()
        tracer.on_fault("isolate", ("s0",), 0.0)
        tracer.on_fault("isolate", ("s1",), 1.0)
        tracer.on_fault("rejoin", ("s1",), 5.0)
        by_target = {w.targets: w for w in tracer.fault_windows}
        assert by_target[("s1",)].end_ms == 5.0
        assert by_target[("s0",)].end_ms is None

    def test_crash_recover_and_degrade_restore_pair(self):
        tracer = Tracer()
        tracer.on_fault("crash", ("s0",), 0.0)
        tracer.on_fault("degrade", (), 1.0)
        tracer.on_fault("recover", ("s0",), 4.0)
        tracer.on_fault("restore", (), 6.0)
        kinds = {w.kind: w for w in tracer.fault_windows}
        assert kinds["crash"].end_ms == 4.0
        assert kinds["degrade"].end_ms == 6.0

    def test_informational_kinds_become_zero_width_markers(self):
        tracer = Tracer()
        tracer.on_fault("scale-out", ("cluster0-VA",), 3.0)
        (window,) = tracer.fault_windows
        assert window.start_ms == window.end_ms == 3.0

    def test_overlaps_treats_open_end_as_infinite(self):
        window = FaultWindow(1, "partition", (), 10.0)
        assert window.overlaps(100.0, 200.0)
        window.end_ms = 20.0
        assert not window.overlaps(20.0, 30.0)
        assert window.overlaps(15.0, 30.0)


class TestFinalize:
    def test_finalize_closes_open_windows_and_stamps_overlaps(self):
        tracer = Tracer()
        inside = tracer.start_span("t1", "txn", None, "s", 12.0)
        tracer.finish(inside, 18.0)
        outside = tracer.start_span("t2", "txn", None, "s", 0.0)
        tracer.finish(outside, 5.0)
        tracer.on_fault("partition", ("VA",), 10.0)
        tracer.finalize(40.0)
        assert tracer.fault_windows[0].end_ms == 40.0
        assert inside.faults == (tracer.fault_windows[0].window_id,)
        assert outside.faults == ()

    def test_zero_width_marker_windows_do_not_stamp(self):
        tracer = Tracer()
        span = tracer.start_span("t", "txn", None, "s", 0.0)
        tracer.finish(span, 10.0)
        tracer.on_fault("scale-out", ("c",), 5.0)
        tracer.finalize(20.0)
        assert span.faults == ()

    def test_finalize_closes_unfinished_spans(self):
        tracer = Tracer()
        span = tracer.start_span("t", "txn", None, "s", 3.0)
        tracer.finalize(50.0)
        assert span.end_ms == 3.0  # falls back to start, not now


class TestQueries:
    def test_trace_and_roots(self):
        tracer = Tracer()
        root = tracer.start_span("r", "txn", None, "s", 0.0)
        child = tracer.start_span("c", "rpc", tracer.context(root), "s", 1.0)
        other = tracer.start_span("o", "ae", None, "s", 2.0)
        assert tracer.trace(root.trace_id) == [root, child]
        assert tracer.roots() == [root, other]

    def test_context_is_trace_plus_span(self):
        tracer = Tracer()
        span = tracer.start_span("r", "txn", None, "s", 0.0)
        context = tracer.context(span)
        assert isinstance(context, TraceContext)
        assert (context.trace_id, context.span_id) == (span.trace_id,
                                                       span.span_id)
