"""Unit tests for the metrics registry and the recency probes."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.staleness import StalenessProbe


class TestCounters:
    def test_inc_and_labels(self):
        registry = MetricsRegistry()
        registry.inc("requests_total")
        registry.inc("requests_total", 2.0)
        registry.inc("requests_total", node="s1")
        assert registry.counter_value("requests_total") == 3.0
        assert registry.counter_value("requests_total", node="s1") == 1.0
        assert registry.counter_total("requests_total") == 4.0

    def test_unknown_counter_is_zero(self):
        registry = MetricsRegistry()
        assert registry.counter_value("nope") == 0.0
        assert registry.counter_total("nope") == 0.0


class TestGauges:
    def test_set_and_max(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 4.0, node="s1")
        registry.set_gauge("depth", 2.0, node="s1")
        assert registry.gauges[("depth", (("node", "s1"),))] == 2.0
        registry.max_gauge("depth_max", 4.0)
        registry.max_gauge("depth_max", 2.0)
        assert registry.gauges[("depth_max", ())] == 4.0


class TestWindows:
    def test_observations_bucket_into_absolute_tiles(self):
        registry = MetricsRegistry(window_ms=100.0)
        registry.observe("lat_ms", 10.0, 5.0)
        registry.observe("lat_ms", 150.0, 7.0)
        registry.observe("lat_ms", 199.0, 9.0)
        assert registry.window_indices("lat_ms") == [0, 1]
        assert registry.merged_quantiles("lat_ms", [1])["count"] == 2

    def test_boundary_observation_in_exactly_one_window(self):
        registry = MetricsRegistry(window_ms=100.0)
        # Exactly on the tile edge: half-open [100, 200) owns it.
        registry.observe("lat_ms", 100.0, 1.0)
        assert registry.window_indices("lat_ms") == [1]
        total = sum(registry.merged_quantiles("lat_ms", [i])["count"]
                    for i in (0, 1, 2)
                    if registry.merged_quantiles("lat_ms", [i]) is not None)
        assert total == 1

    def test_summary_exact_stats(self):
        registry = MetricsRegistry(window_ms=100.0)
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("lat_ms", 50.0, value)
        summary = registry.summary("lat_ms")
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_empty_summary_is_none(self):
        registry = MetricsRegistry()
        assert registry.summary("lat_ms") is None
        assert registry.merged_quantiles("lat_ms", [0]) is None

    def test_indices_in_range_uses_midpoints(self):
        registry = MetricsRegistry(window_ms=100.0)
        for at in (50.0, 150.0, 250.0):
            registry.observe("lat_ms", at, 1.0)
        assert registry.indices_in_range(0.0, 200.0) == [0, 1]
        assert registry.indices_in_range(100.0, 300.0) == [1, 2]


class TestMerge:
    def test_merge_of_parts_equals_whole(self):
        whole = MetricsRegistry(window_ms=100.0)
        part_a = MetricsRegistry(window_ms=100.0)
        part_b = MetricsRegistry(window_ms=100.0)
        for i in range(20):
            target = part_a if i % 2 else part_b
            whole.observe("lat_ms", i * 25.0, float(i))
            target.observe("lat_ms", i * 25.0, float(i))
            whole.inc("ops_total", node=f"s{i % 3}")
            target.inc("ops_total", node=f"s{i % 3}")
            whole.max_gauge("depth_max", float(i))
            target.max_gauge("depth_max", float(i))
        part_a.merge(part_b)
        assert part_a.counter_total("ops_total") == whole.counter_total(
            "ops_total")
        assert part_a.gauges == whole.gauges
        merged = part_a.summary("lat_ms")
        reference = whole.summary("lat_ms")
        assert merged["count"] == reference["count"]
        assert merged["mean"] == pytest.approx(reference["mean"])
        assert merged["min"] == reference["min"]
        assert merged["max"] == reference["max"]

    def test_merge_rejects_window_mismatch(self):
        from repro.errors import ReproError
        a = MetricsRegistry(window_ms=100.0)
        b = MetricsRegistry(window_ms=200.0)
        with pytest.raises(ReproError):
            a.merge(b)


class TestFaultWindows:
    def test_on_fault_opens_and_closes(self):
        registry = MetricsRegistry()
        registry.on_fault("partition", ("VA", "OR"), 100.0, "split")
        registry.on_fault("heal", (), 300.0, "heal")
        assert len(registry.fault_windows) == 1
        window = registry.fault_windows[0]
        assert window.kind == "partition"
        assert window.start_ms == 100.0
        assert window.end_ms == 300.0

    def test_marker_kinds_are_zero_width(self):
        registry = MetricsRegistry()
        registry.on_fault("scale-out", ("c0",), 150.0, "join")
        assert len(registry.fault_windows) == 1
        window = registry.fault_windows[0]
        assert window.start_ms == window.end_ms == 150.0

    def test_finalize_closes_open_windows(self):
        registry = MetricsRegistry()
        registry.on_fault("partition", ("VA",), 100.0, "split")
        registry.finalize(500.0)
        assert registry.fault_windows[0].end_ms == 500.0


class TestExports:
    def _populated(self):
        registry = MetricsRegistry(window_ms=100.0)
        registry.inc("ops_total", 3.0, node="s1")
        registry.set_gauge("depth", 2.0)
        registry.observe("lat_ms", 50.0, 10.0)
        registry.observe("lat_ms", 150.0, 20.0)
        registry.on_fault("partition", ("VA",), 100.0, "split")
        registry.finalize(200.0)
        return registry

    def test_timeseries_shape_and_fault_join(self):
        payload = self._populated().timeseries()
        decoded = json.loads(json.dumps(payload, allow_nan=False))
        assert decoded["window_ms"] == 100.0
        series = {s["name"]: s for s in decoded["series"]}
        windows = series["lat_ms"]["windows"]
        assert [w["index"] for w in windows] == [0, 1]
        assert windows[0]["faults"] == []
        assert windows[1]["faults"] == [1]
        assert decoded["fault_windows"][0]["kind"] == "partition"

    def test_prometheus_exposition(self):
        text = self._populated().prometheus()
        assert "# TYPE repro_ops_total counter" in text
        assert 'repro_ops_total{node="s1"} 3' in text
        assert "# TYPE repro_depth gauge" in text
        assert "# TYPE repro_lat_ms summary" in text
        assert 'repro_lat_ms{quantile="0.5"}' in text
        assert "repro_lat_ms_count 2" in text
        # Deterministic: same registry renders the same text.
        assert text == self._populated().prometheus()


class TestStalenessProbe:
    def test_t_visibility_bucketed_by_commit_time(self):
        registry = MetricsRegistry(window_ms=100.0)
        probe = registry.staleness
        probe.on_commit("k", 1, "s1", 50.0)
        probe.on_install("k", 1, "s2", 450.0)
        # The 400 ms lag lands in the commit's window, not the install's.
        assert registry.window_indices("t_visibility_ms") == [0]
        assert registry.summary("t_visibility_ms")["max"] == 400.0

    def test_duplicate_installs_and_commits_are_idempotent(self):
        registry = MetricsRegistry()
        probe = registry.staleness
        probe.on_commit("k", 1, "s1", 0.0)
        probe.on_commit("k", 1, "s9", 99.0)  # replayed announcement: no-op
        probe.on_install("k", 1, "s2", 40.0)
        probe.on_install("k", 1, "s2", 80.0)  # replayed anti-entropy
        probe.on_install("k", 1, "s1", 60.0)  # origin install: not lag
        assert registry.counter_total("staleness_commits_total") == 1.0
        assert registry.counter_total("staleness_installs_total") == 1.0
        assert registry.summary("t_visibility_ms")["count"] == 1

    def test_replica_set_frozen_at_commit(self):
        registry = MetricsRegistry()
        probe = registry.staleness
        probe.on_commit("k", 1, "s1", 0.0, replicas=("s1", "s2"))
        probe.on_install("k", 1, "s2", 40.0)
        # A later rebalance streaming the version to a brand-new owner is
        # bootstrap catch-up, not replication lag.
        probe.on_install("k", 1, "s3", 900.0)
        assert registry.summary("t_visibility_ms")["count"] == 1
        assert registry.summary("t_visibility_ms")["max"] == 40.0

    def test_unknown_version_install_ignored(self):
        registry = MetricsRegistry()
        registry.staleness.on_install("k", 7, "s2", 10.0)
        assert registry.summary("t_visibility_ms") is None

    def test_k_staleness_ranks_against_ledger(self):
        registry = MetricsRegistry()
        probe = registry.staleness
        for timestamp in (1, 2, 3):
            probe.on_commit("k", timestamp, "s1", float(timestamp))
        probe.on_read("k", 3, 10.0)   # freshest
        probe.on_read("k", 1, 10.0)   # two behind
        probe.on_read("k", None, 10.0)  # found nothing: behind all three
        probe.on_read("other", None, 10.0)  # no ledger: k = 0
        summary = registry.summary("k_staleness_versions")
        assert summary["count"] == 4
        assert summary["min"] == 0.0
        assert summary["max"] == 3.0
        assert registry.counter_total("staleness_reads_total") == 4.0
        assert probe.ledger_depth("k") == 3


class TestOptIn:
    def test_metrics_off_by_default(self):
        from repro.hat.testbed import Scenario, build_testbed
        testbed = build_testbed(Scenario(regions=["VA"],
                                         servers_per_cluster=1, seed=0))
        assert testbed.metrics is None
        assert testbed.network.metrics is None

    def test_metrics_opt_in_installs_registry(self):
        from repro.hat.testbed import Scenario, build_testbed
        testbed = build_testbed(Scenario(regions=["VA"],
                                         servers_per_cluster=1, seed=0,
                                         metrics=True,
                                         metrics_window_ms=250.0))
        assert isinstance(testbed.metrics, MetricsRegistry)
        assert testbed.metrics.window_ms == 250.0
        assert isinstance(testbed.metrics.staleness, StalenessProbe)
