"""Tests for the Section 6.2 anomaly auditor over recorded histories."""

from repro.adya.history import HistoryBuilder
from repro.workloads.tpcc import district_next_oid_key, new_order_key
from repro.workloads.tpcc_audit import audit_tpcc_history
from repro.workloads.tpcc_driver import DELIVERED, PENDING


def new_order_txn(builder, w, d, oid, read_counter=None):
    t = builder.transaction()
    t.read(district_next_oid_key(w, d), value=read_counter or oid)
    t.write(new_order_key(w, d, oid), PENDING)
    t.write(district_next_oid_key(w, d), oid + 1)
    return t


def delivery_txn(builder, w, d, oid, observed_status):
    t = builder.transaction()
    t.read(new_order_key(w, d, oid), value=observed_status)
    t.write(new_order_key(w, d, oid), DELIVERED)
    return t


class TestOrderIdAudit:
    def test_clean_sequential_history(self):
        builder = HistoryBuilder()
        for oid in (1, 2, 3):
            new_order_txn(builder, 1, 1, oid)
        report = audit_tpcc_history(builder.build())
        assert report.orders_claimed == 3
        assert report.duplicate_order_ids == []
        assert report.gapped_order_ids == []
        assert report.total_anomalies == 0

    def test_duplicate_claims_detected(self):
        builder = HistoryBuilder()
        new_order_txn(builder, 1, 1, 1)
        new_order_txn(builder, 1, 1, 1)  # concurrent claimant, stale read
        report = audit_tpcc_history(builder.build())
        assert report.duplicate_order_ids == [(1, 1, 1)]
        assert report.order_id_anomalies == 1

    def test_gaps_detected_below_the_high_water_mark(self):
        builder = HistoryBuilder()
        new_order_txn(builder, 1, 1, 1)
        new_order_txn(builder, 1, 1, 4)  # read a future counter: skipped 2, 3
        report = audit_tpcc_history(builder.build())
        assert report.gapped_order_ids == [(1, 1, 2), (1, 1, 3)]
        assert report.order_id_anomalies == 2

    def test_districts_audited_independently(self):
        builder = HistoryBuilder()
        new_order_txn(builder, 1, 1, 1)
        new_order_txn(builder, 1, 2, 1)  # same id, different district: fine
        report = audit_tpcc_history(builder.build())
        assert report.duplicate_order_ids == []

    def test_aborted_claims_ignored(self):
        builder = HistoryBuilder()
        new_order_txn(builder, 1, 1, 1)
        new_order_txn(builder, 1, 1, 1).abort()
        report = audit_tpcc_history(builder.build())
        assert report.duplicate_order_ids == []
        assert report.orders_claimed == 1


class TestDeliveryAudit:
    def test_single_billing_is_clean(self):
        builder = HistoryBuilder()
        new_order_txn(builder, 1, 1, 1)
        delivery_txn(builder, 1, 1, 1, observed_status=PENDING)
        report = audit_tpcc_history(builder.build())
        assert report.double_deliveries == []

    def test_two_billings_for_one_order_detected(self):
        builder = HistoryBuilder()
        new_order_txn(builder, 1, 1, 1)
        delivery_txn(builder, 1, 1, 1, observed_status=PENDING)
        delivery_txn(builder, 1, 1, 1, observed_status=PENDING)  # stale read
        report = audit_tpcc_history(builder.build())
        assert report.double_deliveries == [(1, 1, 1)]
        assert report.total_anomalies == 1

    def test_idempotent_redelivery_not_counted(self):
        """A worker that read DELIVERED re-marks but does not bill."""
        builder = HistoryBuilder()
        new_order_txn(builder, 1, 1, 1)
        delivery_txn(builder, 1, 1, 1, observed_status=PENDING)
        delivery_txn(builder, 1, 1, 1, observed_status=DELIVERED)
        report = audit_tpcc_history(builder.build())
        assert report.double_deliveries == []

    def test_invisible_placeholder_counts_as_billing(self):
        """Reading no placeholder at all (None) still bills the customer."""
        builder = HistoryBuilder()
        new_order_txn(builder, 1, 1, 1)
        delivery_txn(builder, 1, 1, 1, observed_status=PENDING)
        delivery_txn(builder, 1, 1, 1, observed_status=None)
        report = audit_tpcc_history(builder.build())
        assert report.double_deliveries == [(1, 1, 1)]


class TestReportShape:
    def test_as_dict_is_json_safe(self):
        import json

        builder = HistoryBuilder()
        new_order_txn(builder, 1, 1, 1)
        new_order_txn(builder, 1, 1, 1)
        delivery_txn(builder, 1, 1, 1, observed_status=PENDING)
        report = audit_tpcc_history(builder.build())
        payload = json.loads(json.dumps(report.as_dict(), allow_nan=False))
        assert payload["orders_claimed"] == 2
        assert payload["duplicate_order_ids"] == 1
        assert payload["duplicates"] == [[1, 1, 1]]
        assert payload["double_deliveries"] == 0

    def test_empty_history(self):
        report = audit_tpcc_history(HistoryBuilder().build())
        assert report.total_anomalies == 0
        assert report.orders_claimed == 0
