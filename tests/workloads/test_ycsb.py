"""Unit tests for the YCSB-style workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


class TestYCSBConfig:
    def test_paper_defaults(self):
        config = YCSBConfig()
        assert config.operations_per_transaction == 8
        assert config.write_proportion == 0.5
        assert config.key_count == 100_000
        assert config.value_bytes == 1024
        assert config.distribution == "uniform"

    def test_validation(self):
        with pytest.raises(WorkloadError):
            YCSBConfig(operations_per_transaction=0)
        with pytest.raises(WorkloadError):
            YCSBConfig(write_proportion=1.5)
        with pytest.raises(WorkloadError):
            YCSBConfig(distribution="gaussian")


class TestYCSBWorkload:
    def test_transaction_shape(self):
        workload = YCSBWorkload(YCSBConfig(operations_per_transaction=8))
        txn = workload.next_transaction()
        assert len(txn.operations) == 8
        assert all(op.is_read or op.is_write for op in txn.operations)

    def test_write_proportion_extremes(self):
        all_reads = YCSBWorkload(YCSBConfig(write_proportion=0.0)).next_transaction()
        all_writes = YCSBWorkload(YCSBConfig(write_proportion=1.0)).next_transaction()
        assert all(op.is_read for op in all_reads.operations)
        assert all(op.is_write for op in all_writes.operations)

    def test_write_proportion_statistics(self):
        workload = YCSBWorkload(YCSBConfig(write_proportion=0.3,
                                           operations_per_transaction=10), seed=1)
        operations = [op for txn in workload.transactions(300) for op in txn.operations]
        writes = sum(1 for op in operations if op.is_write)
        assert writes / len(operations) == pytest.approx(0.3, abs=0.05)

    def test_keys_within_configured_space(self):
        workload = YCSBWorkload(YCSBConfig(key_count=50), seed=2)
        for txn in workload.transactions(50):
            for op in txn.operations:
                assert op.key.startswith("user")
                assert 0 <= int(op.key[4:]) < 50

    def test_deterministic_given_seed(self):
        a = YCSBWorkload(YCSBConfig(key_count=100), seed=3)
        b = YCSBWorkload(YCSBConfig(key_count=100), seed=3)
        txn_a, txn_b = a.next_transaction(), b.next_transaction()
        assert [(op.kind, op.key) for op in txn_a.operations] == \
               [(op.kind, op.key) for op in txn_b.operations]

    def test_session_id_propagates(self):
        workload = YCSBWorkload(session_id=42)
        assert workload.next_transaction().session_id == 42

    def test_zipfian_mode(self):
        workload = YCSBWorkload(YCSBConfig(distribution="zipfian", key_count=1000), seed=4)
        keys = [op.key for txn in workload.transactions(100) for op in txn.operations]
        assert len(set(keys)) < len(keys)  # repeats exist under skew

    def test_load_keys_prefix(self):
        workload = YCSBWorkload(YCSBConfig(key_count=10_000))
        keys = workload.load_keys(fraction=0.01)
        assert keys[0] == "user0" and len(keys) == 100
