"""Tests for the pluggable workload interface and the runner's use of it."""

import pytest

from repro.errors import WorkloadError
from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction
from repro.workloads.base import (
    Workload,
    WorkloadFactory,
    as_workload_factory,
    run_preload,
)
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


class RecordingWorkload(Workload):
    """A minimal workload that remembers every observed result."""

    def __init__(self, session_id=None):
        self.session_id = session_id
        self.observed = []

    def next_transaction(self):
        return Transaction([Operation.write("k", "v")],
                           session_id=self.session_id)

    def observe(self, result):
        self.observed.append(result)


class RecordingFactory(WorkloadFactory):
    def __init__(self):
        self.built = []

    def build(self, seed, session_id):
        workload = RecordingWorkload(session_id=session_id)
        self.built.append(workload)
        return workload


class TestFactoryShape:
    def test_ycsb_config_is_a_factory(self):
        factory = as_workload_factory(YCSBConfig(key_count=10))
        workload = factory.build(seed=3, session_id=7)
        assert isinstance(workload, YCSBWorkload)
        assert workload.session_id == 7
        assert factory.initial_transactions() == []
        assert factory.settle_ms == 0.0

    def test_ycsb_build_matches_direct_construction(self):
        config = YCSBConfig(key_count=50)
        built = config.build(seed=9, session_id=1)
        direct = YCSBWorkload(config, seed=9, session_id=1)
        for _ in range(5):
            a, b = built.next_transaction(), direct.next_transaction()
            assert [op.key for op in a.operations] == [op.key for op in b.operations]

    def test_non_factory_rejected(self):
        with pytest.raises(WorkloadError, match="workload factory"):
            as_workload_factory(object())

    def test_abc_factory_defaults(self):
        factory = RecordingFactory()
        assert factory.initial_transactions() == []
        assert factory.settle_ms == 0.0

    def test_workload_observe_defaults_to_noop(self):
        class Minimal(Workload):
            def next_transaction(self):
                return Transaction([Operation.read("x")])

        assert Minimal().observe(object()) is None


class TestObserveFeedback:
    def test_runner_feeds_results_back(self):
        from repro.bench.runner import RunConfig, run_workload

        factory = RecordingFactory()
        scenario = Scenario(regions=["VA"], servers_per_cluster=2)
        config = RunConfig(protocol="eventual", scenario=scenario,
                           workload=factory, clients_per_cluster=2,
                           duration_ms=200.0, warmup_ms=0.0,
                           grace_period_ms=200.0)
        stats = run_workload(config)
        assert stats.committed > 0
        observed = sum(len(w.observed) for w in factory.built)
        assert observed == stats.committed + stats.aborted
        assert all(r.committed for w in factory.built for r in w.observed)


class TestRunPreload:
    def test_preload_writes_become_visible_everywhere(self):
        class Loaded(WorkloadFactory):
            settle_ms = 300.0

            def build(self, seed, session_id):
                raise AssertionError("not needed")

            def initial_transactions(self):
                return [Transaction([Operation.write("seeded", 41)])]

        testbed = build_testbed(Scenario(regions=["VA", "OR"],
                                         servers_per_cluster=2))
        count = run_preload(testbed, Loaded())
        assert count == 1
        # After the settle period every replica (via anti-entropy) has it.
        reader = testbed.make_client("eventual", home_cluster="cluster1-OR")
        result = testbed.env.run_until_complete(
            reader.execute(Transaction([Operation.read("seeded")])))
        assert result.value_read("seeded") == 41

    def test_empty_preload_is_free(self):
        testbed = build_testbed(Scenario(regions=["VA"], servers_per_cluster=1))
        assert run_preload(testbed, YCSBConfig()) == 0
        assert testbed.env.now == 0.0
