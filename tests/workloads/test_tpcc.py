"""Unit tests for the TPC-C workload generator."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.tpcc import (
    DELIVERY,
    NEW_ORDER,
    ORDER_STATUS,
    PAYMENT,
    STOCK_LEVEL,
    TPCCConfig,
    TPCCWorkload,
    district_next_oid_key,
    new_order_key,
    stock_key,
)


@pytest.fixture
def workload():
    return TPCCWorkload(TPCCConfig(warehouses=2, districts_per_warehouse=2,
                                   customers_per_district=5, items=20), seed=1)


class TestTPCCConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            TPCCConfig(warehouses=0)
        with pytest.raises(WorkloadError):
            TPCCConfig(mix={NEW_ORDER: 0.5})


class TestInitialLoad:
    def test_populates_warehouses_districts_and_stock(self, workload):
        transactions = workload.initial_load()
        keys = {op.key for txn in transactions for op in txn.operations}
        assert "warehouse:1" in keys and "warehouse:2" in keys
        assert district_next_oid_key(1, 1) in keys
        assert stock_key(2, 20) in keys

    def test_initial_state_counters(self, workload):
        assert workload.state.next_order_id[(1, 1)] == 1
        assert workload.state.stock_level[(1, 5)] == 100
        assert workload.state.warehouse_ytd[1] == 0.0


class TestNewOrder:
    def test_writes_order_lines_and_stock(self, workload):
        txn = workload.new_order(warehouse=1, district=1)
        assert txn.tpcc_type == NEW_ORDER
        write_keys = [op.key for op in txn.operations if op.is_write]
        assert any(key.startswith("order:1:1:") for key in write_keys)
        assert any(key.startswith("order-line:1:1:") for key in write_keys)
        assert any(key.startswith("stock:1:") for key in write_keys)
        assert district_next_oid_key(1, 1) in write_keys
        assert new_order_key(1, 1, 1) in write_keys

    def test_order_ids_increment_per_district(self, workload):
        workload.new_order(warehouse=1, district=1)
        workload.new_order(warehouse=1, district=1)
        workload.new_order(warehouse=1, district=2)
        assert workload.state.issued_order_ids[(1, 1)] == [1, 2]
        assert workload.state.issued_order_ids[(1, 2)] == [1]

    def test_stock_never_negative(self, workload):
        for _ in range(200):
            workload.new_order(warehouse=1)
        assert all(level >= 0 for level in workload.state.stock_level.values())

    def test_reads_district_counter_and_stock(self, workload):
        txn = workload.new_order(warehouse=1, district=1)
        read_keys = [op.key for op in txn.operations if op.is_read]
        assert district_next_oid_key(1, 1) in read_keys
        assert any(key.startswith("stock:1:") for key in read_keys)


class TestPayment:
    def test_updates_three_balances_atomically(self, workload):
        txn = workload.payment(warehouse=1)
        write_keys = [op.key for op in txn.operations if op.is_write]
        assert any(key.startswith("warehouse-ytd:") for key in write_keys)
        assert any(key.startswith("district-ytd:") for key in write_keys)
        assert any(key.startswith("customer-balance:") for key in write_keys)
        assert any(key.startswith("payment-history:") for key in write_keys)

    def test_driver_state_tracks_ytd_sums(self, workload):
        before = workload.state.warehouse_ytd[1]
        workload.payment(warehouse=1)
        assert workload.state.warehouse_ytd[1] > before


class TestReadOnlyTransactions:
    def test_order_status_is_read_only(self, workload):
        txn = workload.order_status()
        assert txn.tpcc_type == ORDER_STATUS
        assert all(op.is_read for op in txn.operations)

    def test_stock_level_is_read_only(self, workload):
        txn = workload.stock_level()
        assert txn.tpcc_type == STOCK_LEVEL
        assert all(op.is_read for op in txn.operations)


class TestDelivery:
    def test_delivery_pops_pending_order(self, workload):
        workload.new_order(warehouse=1, district=1)
        assert workload.state.pending_orders[(1, 1)] == [1]
        # Deliver repeatedly until district (1, 1) is drained.
        for _ in range(50):
            workload.delivery(warehouse=1)
        assert workload.state.pending_orders[(1, 1)] == []

    def test_delivery_with_empty_queue_degrades_to_read(self, workload):
        txn = workload.delivery(warehouse=1)
        assert txn.tpcc_type == DELIVERY
        assert all(op.is_read for op in txn.operations)


class TestMix:
    def test_next_transaction_follows_mix(self, workload):
        counts = {}
        for _ in range(500):
            txn = workload.next_transaction()
            counts[txn.tpcc_type] = counts.get(txn.tpcc_type, 0) + 1
        assert counts[NEW_ORDER] > counts.get(STOCK_LEVEL, 0)
        assert counts[PAYMENT] > counts.get(DELIVERY, 0)
        assert set(counts) <= {NEW_ORDER, PAYMENT, ORDER_STATUS, DELIVERY, STOCK_LEVEL}
