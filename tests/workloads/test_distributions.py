"""Unit tests for key distributions."""

import random
from collections import Counter

import pytest

from repro.errors import WorkloadError
from repro.workloads.distributions import UniformKeys, ZipfianKeys


class TestUniformKeys:
    def test_range(self):
        chooser = UniformKeys(100)
        rng = random.Random(0)
        assert all(0 <= chooser.choose(rng) < 100 for _ in range(1000))

    def test_covers_keyspace(self):
        chooser = UniformKeys(10)
        rng = random.Random(1)
        seen = {chooser.choose(rng) for _ in range(1000)}
        assert seen == set(range(10))

    def test_key_formatting(self):
        chooser = UniformKeys(5)
        key = chooser.key(random.Random(0))
        assert key.startswith("user")

    def test_requires_positive_count(self):
        with pytest.raises(WorkloadError):
            UniformKeys(0)


class TestZipfianKeys:
    def test_range(self):
        chooser = ZipfianKeys(50, theta=0.99)
        rng = random.Random(0)
        assert all(0 <= chooser.choose(rng) < 50 for _ in range(2000))

    def test_skew_towards_low_ranks(self):
        chooser = ZipfianKeys(1000, theta=0.99)
        rng = random.Random(2)
        counts = Counter(chooser.choose(rng) for _ in range(20000))
        top_10 = sum(counts[i] for i in range(10))
        assert top_10 / 20000 > 0.2  # the head dominates

    def test_higher_theta_more_skew(self):
        rng_a, rng_b = random.Random(3), random.Random(3)
        mild = ZipfianKeys(1000, theta=0.5)
        strong = ZipfianKeys(1000, theta=1.2)
        mild_head = sum(1 for _ in range(5000) if mild.choose(rng_a) < 10)
        strong_head = sum(1 for _ in range(5000) if strong.choose(rng_b) < 10)
        assert strong_head > mild_head

    def test_theta_validation(self):
        with pytest.raises(WorkloadError):
            ZipfianKeys(10, theta=0.0)
        with pytest.raises(WorkloadError):
            ZipfianKeys(10, theta=2.5)
