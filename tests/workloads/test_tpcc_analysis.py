"""Unit tests for the Section 6.2 TPC-C HAT-compliance analysis."""

from repro.workloads.tpcc import (
    DELIVERY,
    NEW_ORDER,
    ORDER_STATUS,
    PAYMENT,
    STOCK_LEVEL,
    TPCCConfig,
    TPCCWorkload,
)
from repro.workloads.tpcc_analysis import (
    TPCC_TRANSACTION_PROFILES,
    check_condition_1,
    check_no_negative_stock,
    check_sequential_order_ids,
    check_state,
    check_unique_order_ids,
    hat_compliance_table,
    hat_executable_count,
)


class TestProfiles:
    def test_four_of_five_hat_executable(self):
        executable, total = hat_executable_count()
        assert (executable, total) == (4, 5)

    def test_read_only_transactions_are_hat(self):
        assert TPCC_TRANSACTION_PROFILES[ORDER_STATUS].hat_executable
        assert TPCC_TRANSACTION_PROFILES[STOCK_LEVEL].hat_executable
        assert TPCC_TRANSACTION_PROFILES[ORDER_STATUS].read_only

    def test_payment_is_monotonic_and_needs_mav(self):
        payment = TPCC_TRANSACTION_PROFILES[PAYMENT]
        assert payment.monotonic and payment.hat_executable
        assert payment.weakest_sufficient_model == "MAV"

    def test_new_order_needs_lost_update_prevention_for_sequential_ids(self):
        new_order = TPCC_TRANSACTION_PROFILES[NEW_ORDER]
        assert new_order.requires_sequential_ids
        assert new_order.requires_lost_update_prevention
        assert new_order.hat_executable  # with unique (not sequential) ids

    def test_delivery_is_the_unavailable_transaction(self):
        delivery = TPCC_TRANSACTION_PROFILES[DELIVERY]
        assert not delivery.hat_executable
        assert delivery.weakest_sufficient_model == "1SR"

    def test_table_rendering(self):
        text = hat_compliance_table()
        for name in TPCC_TRANSACTION_PROFILES:
            assert name in text


class TestConsistencyCheckers:
    def test_condition_1_balanced(self):
        warehouse = {1: 300.0}
        districts = {(1, 1): 100.0, (1, 2): 200.0}
        assert check_condition_1(warehouse, districts) == []

    def test_condition_1_violation(self):
        warehouse = {1: 250.0}
        districts = {(1, 1): 100.0, (1, 2): 200.0}
        violations = check_condition_1(warehouse, districts)
        assert len(violations) == 1
        assert "warehouse 1" in violations[0].subject

    def test_sequential_ids_checker(self):
        assert check_sequential_order_ids({(1, 1): [1, 2, 3]}) == []
        assert check_sequential_order_ids({(1, 1): [1, 3]})  # gap
        assert check_sequential_order_ids({(1, 1): [1, 2, 2]})  # duplicate

    def test_unique_ids_checker(self):
        assert check_unique_order_ids({(1, 1): [1, 3, 7]}) == []
        assert check_unique_order_ids({(1, 1): [1, 1]})

    def test_negative_stock_checker(self):
        assert check_no_negative_stock({(1, 1): 5}) == []
        assert check_no_negative_stock({(1, 1): -3})

    def test_driver_state_satisfies_all_conditions(self):
        workload = TPCCWorkload(TPCCConfig(warehouses=1, districts_per_warehouse=2,
                                           customers_per_district=5, items=20), seed=3)
        for _ in range(100):
            workload.next_transaction()
        report = check_state(workload.state)
        assert report["condition_1"] == []
        assert report["sequential_ids"] == []
        assert report["unique_ids"] == []
        assert report["non_negative_stock"] == []
