"""Tests for the live TPC-C driver (derived writes + commit-fed mirror)."""

import pytest

from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, resolve_derived
from repro.workloads.base import run_preload
from repro.workloads.tpcc import TPCCConfig, district_next_oid_key, new_order_key
from repro.workloads.tpcc_driver import (
    CLUSTER_MIX,
    DELIVERED,
    PENDING,
    TPCCDriver,
    TPCCDriverFactory,
    TPCCMirror,
    initial_load_transactions,
    parse_new_order_key,
    parse_next_oid_key,
)


def small_config():
    return TPCCConfig(warehouses=1, districts_per_warehouse=2,
                      customers_per_district=5, items=10,
                      max_order_lines=2, mix=dict(CLUSTER_MIX))


class FakeResult:
    """Just enough of a TransactionResult for mirror feeding."""

    def __init__(self, txn_id=1, committed=True, writes=None):
        self.txn_id = txn_id
        self.committed = committed
        self.writes = writes or {}
        self.reads = []


class TestKeyParsing:
    def test_next_oid_key_roundtrip(self):
        assert parse_next_oid_key(district_next_oid_key(3, 7)) == (3, 7)
        assert parse_next_oid_key("stock:1:2") is None

    def test_new_order_key_roundtrip(self):
        assert parse_new_order_key(new_order_key(1, 2, 9)) == (1, 2, 9)
        assert parse_new_order_key("order:1:2:9") is None


class TestDerivedNewOrder:
    def test_order_id_comes_from_the_read_not_the_driver(self):
        driver = TPCCDriver(small_config(), seed=1, session_id=0)
        txn = driver.new_order(warehouse=1, district=1)
        next_key = district_next_oid_key(1, 1)
        assert txn.operations[0] == Operation.read(next_key)
        derived = [op for op in txn.operations if op.is_derived]
        assert derived, "New-Order must carry derived writes"
        # Resolve against a pretend read of next-oid = 5.
        reads = {next_key: 5}
        resolved = {op.derive(reads)[0]: op.derive(reads)[1] for op in derived}
        assert resolved[next_key] == 6
        assert resolved[new_order_key(1, 1, 5)] == PENDING
        assert any(key.startswith("order:1:1:5") for key in resolved)

    def test_unread_counter_defaults_to_one(self):
        driver = TPCCDriver(small_config(), seed=2, session_id=0)
        txn = driver.new_order(warehouse=1, district=2)
        next_key = district_next_oid_key(1, 2)
        bump = [op for op in txn.operations if op.is_derived][-1]
        assert bump.derive({next_key: None}) == (next_key, 2)
        assert bump.derive({}) == (next_key, 2)

    def test_label_and_session_stamped(self):
        driver = TPCCDriver(small_config(), seed=0, session_id=9)
        txn = driver.new_order()
        assert txn.label == "new-order"
        assert txn.tpcc_type == "new-order"
        assert txn.session_id == 9


class TestDerivedDelivery:
    def test_billing_is_conditional_on_the_status_read(self):
        config = small_config()
        mirror = TPCCMirror(config)
        mirror.observe(FakeResult(writes={new_order_key(1, 1, 4): PENDING}))
        driver = TPCCDriver(config, mirror=mirror, seed=3, session_id=0)
        txn = driver.delivery(warehouse=1)
        status_key = new_order_key(1, 1, 4)
        bill = [op for op in txn.operations if op.is_derived][-1]
        bal_key, billed = bill.derive({status_key: PENDING, "x": 0})
        _, unbilled = bill.derive({status_key: DELIVERED})
        assert billed == pytest.approx(10.0)
        assert unbilled == pytest.approx(0.0)

    def test_no_pending_orders_degrades_to_probe(self):
        driver = TPCCDriver(small_config(), seed=4, session_id=0)
        txn = driver.delivery()
        assert all(op.is_read for op in txn.operations)
        assert txn.label == "delivery"


class TestMirror:
    def test_fed_only_by_commits(self):
        mirror = TPCCMirror(small_config())
        mirror.observe(FakeResult(committed=False,
                                  writes={new_order_key(1, 1, 1): PENDING}))
        assert mirror.pending == {}
        mirror.observe(FakeResult(writes={new_order_key(1, 1, 1): PENDING,
                                          district_next_oid_key(1, 1): 2}))
        assert mirror.pending[(1, 1)] == [1]
        assert mirror.issued[(1, 1)] == [1]
        assert mirror.next_order_id[(1, 1)] == 2

    def test_delivered_clears_pending(self):
        mirror = TPCCMirror(small_config())
        mirror.observe(FakeResult(writes={new_order_key(1, 1, 1): PENDING}))
        mirror.observe(FakeResult(writes={new_order_key(1, 1, 2): PENDING}))
        mirror.observe(FakeResult(writes={new_order_key(1, 1, 1): DELIVERED}))
        assert mirror.pending[(1, 1)] == [2]
        assert mirror.districts_with_pending() == [(1, 1)]
        assert mirror.districts_with_pending(warehouse=2) == []

    def test_stale_counter_observations_do_not_regress(self):
        mirror = TPCCMirror(small_config())
        mirror.observe(FakeResult(writes={district_next_oid_key(1, 1): 5}))
        mirror.observe(FakeResult(writes={district_next_oid_key(1, 1): 3}))
        assert mirror.next_order_id[(1, 1)] == 5

    def test_driver_observe_attributes_labels(self):
        config = small_config()
        driver = TPCCDriver(config, seed=5, session_id=0)
        txn = driver.payment(warehouse=1)
        driver.observe(FakeResult(txn_id=txn.txn_id,
                                  writes={"warehouse-ytd:1": 10.0}))
        assert driver.mirror.committed_by_type == {"payment": 1}


class TestFactory:
    def test_shared_mirror_across_clients(self):
        factory = TPCCDriverFactory(config=small_config())
        a = factory.build(seed=0, session_id=0)
        b = factory.build(seed=1, session_id=1)
        assert a.mirror is b.mirror is factory.mirror

    def test_initial_load_covers_every_district_counter(self):
        config = small_config()
        transactions = initial_load_transactions(config)
        writes = {op.key: op.value for t in transactions for op in t.operations}
        for d in range(1, config.districts_per_warehouse + 1):
            assert writes[district_next_oid_key(1, d)] == 1
        assert all(t.label == "load" for t in transactions)

    def test_mix_defaults_are_a_distribution(self):
        assert sum(CLUSTER_MIX.values()) == pytest.approx(1.0)
        factory = TPCCDriverFactory()
        assert sum(factory.config.mix.values()) == pytest.approx(1.0)


class TestThroughTestbed:
    def test_every_program_executes_and_feeds_the_mirror(self):
        testbed = build_testbed(Scenario(regions=["VA"], servers_per_cluster=2))
        factory = TPCCDriverFactory(config=small_config())
        run_preload(testbed, factory)
        # ``causal`` includes read-your-writes, so a *single* serial client
        # always re-reads its own counter increments; weaker stacks (even
        # MAV, which lacks RYW) may not — that asymmetry is the whole point.
        client = testbed.make_client("causal")
        driver = factory.build(seed=7, session_id=0)
        for _ in range(60):
            result = testbed.env.run_until_complete(
                client.execute(driver.next_transaction()))
            assert result.committed
            driver.observe(result)
        by_type = factory.mirror.committed_by_type
        assert by_type.get("new-order", 0) > 0
        assert by_type.get("payment", 0) > 0
        # One serial RYW client is anomaly-free: within each district, the
        # ids it claims are unique and densely sequential.
        for district in ((1, 1), (1, 2)):
            claims = factory.mirror.issued.get(district, [])
            assert claims == list(range(1, len(claims) + 1))
