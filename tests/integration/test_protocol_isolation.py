"""End-to-end isolation verification: recorded histories vs. the Adya checker.

These are the library's most important integration tests: they run real
workloads through the simulated protocols, record every transaction, and feed
the resulting histories to the phenomenon detectors.  Each HAT protocol must
deliver exactly the guarantees Section 5 claims for it.
"""

import pytest

from repro.adya.history import HistoryRecorder
from repro.adya.levels import check_history
from repro.adya.phenomena import G0, G1A, G1B, G1C, LOST_UPDATE, OTV, detect
from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


def drive_workload(protocol, transactions_per_client=25, clients=4,
                   write_proportion=0.5, key_count=40, seed=0,
                   min_commit_fraction=0.9):
    """Run a small concurrent workload and return the recorded history."""
    testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2,
                                     seed=seed))
    recorder = HistoryRecorder()
    env = testbed.env
    results = []

    def loop(client, workload):
        for _ in range(transactions_per_client):
            result = yield client.execute(workload.next_transaction())
            results.append(result)

    for index in range(clients):
        cluster = testbed.config.cluster_names[index % len(testbed.config.cluster_names)]
        client = testbed.make_client(protocol, home_cluster=cluster, recorder=recorder)
        workload = YCSBWorkload(
            YCSBConfig(operations_per_transaction=4, key_count=key_count,
                       write_proportion=write_proportion),
            seed=seed * 100 + index, session_id=index,
        )
        env.process(loop(client, workload))

    env.run(until=env.now + 60_000.0)
    history = recorder.build()
    expected = clients * transactions_per_client * min_commit_fraction
    assert len(history.committed()) >= expected
    return history


class TestReadCommittedProtocol:
    def test_rc_histories_satisfy_read_committed(self):
        history = drive_workload("read-committed")
        report = check_history(history, "RC")
        assert report.satisfied, str(report)

    def test_rc_histories_satisfy_read_uncommitted(self):
        history = drive_workload("read-committed")
        assert check_history(history, "RU").satisfied


class TestEventualProtocol:
    def test_eventual_histories_never_show_dirty_writes(self):
        """Last-writer-wins gives a total per-item write order, so G0 cycles
        cannot occur even though isolation is only Read Uncommitted."""
        history = drive_workload("eventual")
        assert not detect(history, G0)
        assert check_history(history, "RU").satisfied

    def test_eventual_histories_never_read_aborted_data(self):
        """Read Uncommitted permits intermediate reads (G1b) — transactions
        expose writes as soon as they are issued — but aborted reads (G1a)
        still cannot occur because the eventual protocol never aborts after
        applying a write."""
        history = drive_workload("eventual")
        assert not detect(history, G1A)


class TestMAVProtocol:
    def test_mav_histories_satisfy_monotonic_atomic_view(self):
        history = drive_workload("mav")
        report = check_history(history, "MAV")
        assert report.satisfied, str(report)

    def test_mav_histories_never_show_otv(self):
        history = drive_workload("mav", write_proportion=0.7)
        assert not detect(history, OTV)


class TestSerializableBaseline:
    def test_two_phase_locking_prevents_lost_update(self):
        """The non-HAT baseline must prevent what HATs cannot.

        Deadlock victims abort (external aborts), so the commit-fraction bar
        is lower than for the HAT protocols; the committed transactions must
        still be anomaly-free.
        """
        history = drive_workload("two-phase-locking", transactions_per_client=10,
                                 clients=3, key_count=10, min_commit_fraction=0.5)
        assert not detect(history, LOST_UPDATE)
        assert not detect(history, G1C)
        assert check_history(history, "RC").satisfied


class TestHATLimitations:
    def test_hat_protocols_can_exhibit_lost_update_under_contention(self):
        """The flip side of availability (Section 5.2.1): concurrent
        read-modify-write increments on a HAT protocol lose updates."""
        testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=1))
        recorder = HistoryRecorder()
        env = testbed.env
        clients = [testbed.make_client("read-committed", recorder=recorder,
                                       home_cluster=name)
                   for name in testbed.config.cluster_names]

        def increment_loop(client, repetitions=15):
            # Each iteration is a single read-modify-write transaction on the
            # shared counter (the value written is the client's running guess;
            # the Lost Update structure only depends on the read/write graph).
            guess = 0
            for _ in range(repetitions):
                result = yield client.execute(Transaction([
                    Operation.read("counter"),
                    Operation.write("counter", guess + 1),
                ]))
                observed = result.value_read("counter") or 0
                guess = max(guess, observed) + 1

        for client in clients:
            env.process(increment_loop(client))
        env.run(until=env.now + 60_000.0)

        history = recorder.build()
        assert detect(history, LOST_UPDATE), (
            "concurrent increments through a HAT protocol should exhibit "
            "Lost Update"
        )
        # ... while still satisfying the HAT guarantee it promises:
        assert check_history(history, "RC").satisfied
