"""Integration: the paper's Section 6.2 TPC-C predictions, demonstrated.

"TPC-C requires that this counter be assigned sequentially ... this
coordination cannot be implemented in a highly available manner."  The
tests drive *concurrent* New-Order transactions against one district
through the simulated cluster:

* every HAT stack commits them all (availability) but claims duplicate
  order ids — at least one order-id anomaly, always;
* the serializable two-phase-locking baseline serializes the
  read-modify-write and produces dense, sequential, anomaly-free ids;
* the same asymmetry holds for Delivery's exactly-once billing.
"""

import pytest

from repro.adya.history import HistoryRecorder
from repro.adya.levels import check_history
from repro.hat.testbed import Scenario, build_testbed
from repro.sim.process import all_of
from repro.workloads.base import run_preload
from repro.workloads.tpcc import TPCCConfig
from repro.workloads.tpcc_audit import audit_tpcc_history
from repro.workloads.tpcc_driver import CLUSTER_MIX, TPCCDriverFactory

#: Enough per-client New-Orders that both clients overlap on the counter
#: many times; the first pair alone already collides for the HAT stacks.
NEW_ORDERS_PER_CLIENT = 8


def contended_config():
    return TPCCConfig(warehouses=1, districts_per_warehouse=1,
                      customers_per_district=5, items=20,
                      max_order_lines=2, mix=dict(CLUSTER_MIX))


def run_concurrent_new_orders(protocol, per_client=NEW_ORDERS_PER_CLIENT):
    """Two clients in opposite regions race New-Orders on one district."""
    testbed = build_testbed(Scenario(regions=["VA", "OR"],
                                     servers_per_cluster=2))
    factory = TPCCDriverFactory(config=contended_config())
    run_preload(testbed, factory)
    recorder = HistoryRecorder()
    processes = []
    for index, cluster in enumerate(testbed.config.cluster_names):
        client = testbed.make_client(protocol, home_cluster=cluster,
                                     recorder=recorder)
        driver = factory.build(seed=index, session_id=index)

        def loop(client=client, driver=driver):
            for _ in range(per_client):
                result = yield client.execute(
                    driver.new_order(warehouse=1, district=1))
                assert result.committed, \
                    f"{protocol} must stay available on a healthy network"
                driver.observe(result)

        processes.append(testbed.env.process(loop()))
    testbed.env.run_until_complete(all_of(testbed.env, processes))
    return audit_tpcc_history(recorder.build())


class TestOrderIdAnomalies:
    @pytest.mark.parametrize("protocol", ["eventual", "causal"])
    def test_hat_stacks_show_order_id_anomalies(self, protocol):
        """Both HAT clients commit every New-Order, and collide: the two
        streams start from the same preloaded counter, so the very first
        pair of claims is a duplicate."""
        report = run_concurrent_new_orders(protocol)
        assert report.orders_claimed == 2 * NEW_ORDERS_PER_CLIENT
        assert report.order_id_anomalies >= 1
        assert len(report.duplicate_order_ids) >= 1

    def test_serializable_locking_is_anomaly_free(self):
        """2PL serializes the counter read-modify-write: ids come out
        dense, sequential, and unique."""
        report = run_concurrent_new_orders("lock-sr")
        assert report.orders_claimed == 2 * NEW_ORDERS_PER_CLIENT
        assert report.order_id_anomalies == 0
        claims = sorted(report.claims[(1, 1)])
        assert claims == list(range(1, 2 * NEW_ORDERS_PER_CLIENT + 1))

    def test_master_is_not_enough(self):
        """Single-key linearizability without multi-op isolation still
        loses the update: the paper's point that New-Order needs
        lost-update *prevention*, not just recency."""
        report = run_concurrent_new_orders("master")
        assert report.order_id_anomalies >= 1


class TestDoubleDeliveries:
    def _run_mix(self, protocol, transactions_per_client=40):
        testbed = build_testbed(Scenario(regions=["VA", "OR"],
                                         servers_per_cluster=2))
        factory = TPCCDriverFactory(config=contended_config())
        run_preload(testbed, factory)
        recorder = HistoryRecorder()
        processes = []
        for index, cluster in enumerate(testbed.config.cluster_names):
            client = testbed.make_client(protocol, home_cluster=cluster,
                                         recorder=recorder)
            driver = factory.build(seed=100 + index, session_id=index)

            def loop(client=client, driver=driver):
                for _ in range(transactions_per_client):
                    result = yield client.execute(driver.next_transaction())
                    driver.observe(result)

            processes.append(testbed.env.process(loop()))
        testbed.env.run_until_complete(all_of(testbed.env, processes))
        return audit_tpcc_history(recorder.build())

    def test_hat_mix_double_delivers(self):
        # 80 transactions per client: the double-delivery race needs enough
        # Delivery/Delivery collisions to manifest for this seed under the
        # current timing model (it shows ~2 at this scale).
        report = self._run_mix("read-committed", transactions_per_client=80)
        assert len(report.double_deliveries) >= 1

    def test_locking_mix_never_double_delivers(self):
        report = self._run_mix("lock-sr", transactions_per_client=15)
        assert report.double_deliveries == []
        assert report.order_id_anomalies == 0


class TestAdyaIntegration:
    def test_recorded_tpcc_history_passes_the_base_isolation_checks(self):
        """The recorded TPC-C history is a full Adya history: the same
        structure the isolation-level checkers consume.  Read Committed
        must actually provide PL-2 on it (no dirty reads/writes), even
        while the *application-level* sequential-id condition fails."""
        testbed = build_testbed(Scenario(regions=["VA", "OR"],
                                         servers_per_cluster=2))
        factory = TPCCDriverFactory(config=contended_config())
        run_preload(testbed, factory)
        recorder = HistoryRecorder()
        processes = []
        for index, cluster in enumerate(testbed.config.cluster_names):
            client = testbed.make_client("read-committed",
                                         home_cluster=cluster,
                                         recorder=recorder)
            driver = factory.build(seed=7 + index, session_id=index)

            def loop(client=client, driver=driver):
                for _ in range(20):
                    result = yield client.execute(driver.next_transaction())
                    driver.observe(result)

            processes.append(testbed.env.process(loop()))
        testbed.env.run_until_complete(all_of(testbed.env, processes))
        history = recorder.build()
        verdict = check_history(history, "RC")
        assert verdict.satisfied, verdict.violations
        # Labels survive into the history for per-program grouping.
        labels = {t.label for t in history.committed()}
        assert "new-order" in labels
