"""Cross-cutting integration scenarios.

These tests exercise combinations the unit tests do not: cut isolation plus
sessions stacked on one client, HAT and non-HAT clients sharing one
deployment, and convergence after a long partition with traffic on both
sides (the paper's eventual-consistency guarantee, Section 5.1.4).
"""

import pytest

from repro.hat.cut_isolation import CutIsolationClient
from repro.hat.sessions import SessionClient
from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction


@pytest.fixture
def testbed():
    return build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))


def run(testbed, client, operations):
    return testbed.env.run_until_complete(
        client.execute(Transaction(list(operations)))
    )


class TestStackedWrappers:
    def test_session_over_cut_isolation_over_rc(self, testbed):
        """The testbed can stack both wrappers; guarantees compose."""
        client = testbed.make_client("read-committed", session=True,
                                     cut_isolation=True)
        run(testbed, client, [Operation.write("k", "v1")])
        result = run(testbed, client, [Operation.read("k"), Operation.read("k")])
        values = [obs.version.value for obs in result.reads]
        assert values == ["v1", "v1"]

    def test_wrapper_protocol_names(self, testbed):
        client = testbed.make_client("eventual", session=True, cut_isolation=True)
        assert client.protocol_name == "eventual+p-ci+session"


class TestMixedProtocolsOneDeployment:
    def test_hat_and_master_clients_share_servers(self, testbed):
        """A master client's write is immediately visible to another master
        client and eventually visible to a HAT client via anti-entropy."""
        master_writer = testbed.make_client("master")
        master_reader = testbed.make_client(
            "master", home_cluster=testbed.config.cluster_names[1])
        hat_reader = testbed.make_client(
            "eventual", home_cluster=testbed.config.cluster_names[1])
        run(testbed, master_writer, [Operation.write("shared", "from-master")])
        assert run(testbed, master_reader,
                   [Operation.read("shared")]).value_read("shared") == "from-master"
        testbed.run(2000.0)
        assert run(testbed, hat_reader,
                   [Operation.read("shared")]).value_read("shared") == "from-master"

    def test_hat_write_visible_to_master_reader_at_master_site(self, testbed):
        hat_writer = testbed.make_client("eventual")
        master_reader = testbed.make_client("master")
        run(testbed, hat_writer, [Operation.write("hat-key", 1)])
        testbed.run(2000.0)  # anti-entropy reaches the key's master replica
        assert run(testbed, master_reader,
                   [Operation.read("hat-key")]).value_read("hat-key") == 1


class TestConvergenceAfterPartition:
    def test_divergent_writes_converge_to_one_winner(self, testbed):
        """Convergence (Section 5.1.4): after the partition heals, all
        replicas agree on a single last-writer-wins value per item."""
        clients = [testbed.make_client("eventual", home_cluster=name)
                   for name in testbed.config.cluster_names]
        testbed.partition_regions([["VA"], ["OR"]])
        for index, client in enumerate(clients):
            for round_number in range(3):
                result = run(testbed, client,
                             [Operation.write("contested", f"side{index}-r{round_number}")])
                assert result.committed
        testbed.heal()
        testbed.run(3000.0)
        observed = {
            run(testbed, client, [Operation.read("contested")]).value_read("contested")
            for client in clients
        }
        assert len(observed) == 1
        replicas = testbed.config.replicas_for("contested")
        stored = {testbed.servers[r].store.data.latest("contested").value
                  for r in replicas}
        assert stored == observed
