"""End-to-end verification of the composite (stacked) protocols.

The registry's ``causal`` and ``mav+causal`` stacks must work through the
whole pipeline — testbed, bench runner, history recorder — and their
recorded histories must pass the Adya phenomena checks for the levels they
claim.  The paper's causal HAT construction is client-centric (sticky
clients plus session caching and dependency forwarding), so:

* the session-scoped guarantees (PRAM: N-MR, N-MW, MYR) must hold even while
  a partition forces every session to fail over mid-run, and
* the full Causal level (which adds the globally-judged MRWD check) is
  verified on a single-cluster deployment, where replica divergence cannot
  reorder the visibility of concurrently re-forwarded dependencies.
"""

import pytest

from repro.adya.history import HistoryRecorder
from repro.adya.levels import check_history
from repro.adya.phenomena import MYR, N_MR, detect
from repro.bench.runner import RunConfig, run_workload
from repro.hat.testbed import Scenario, build_testbed
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


def record_workload(protocol, scenario, transactions_per_client=25, clients=4,
                    seed=0, partition_home_after=None):
    """Run a concurrent workload, optionally failing over mid-run."""
    testbed = build_testbed(scenario)
    recorder = HistoryRecorder()
    env = testbed.env
    rounds = []

    for index in range(clients):
        cluster = testbed.config.cluster_names[index % len(testbed.config.cluster_names)]
        client = testbed.make_client(protocol, home_cluster=cluster,
                                     recorder=recorder)
        workload = YCSBWorkload(
            YCSBConfig(operations_per_transaction=4, key_count=40,
                       write_proportion=0.5),
            seed=seed * 100 + index, session_id=index,
        )
        rounds.append((client, workload))

    committed = 0
    for step in range(transactions_per_client):
        if partition_home_after is not None and step == partition_home_after:
            dead = set(testbed.config.cluster(testbed.config.cluster_names[0]).servers)
            testbed.network.partitions.partition_by(
                lambda site: None if site in dead else "rest"
            )
        for client, workload in rounds:
            result = env.run_until_complete(
                client.execute(workload.next_transaction())
            )
            committed += bool(result.committed)
    assert committed == clients * transactions_per_client
    return recorder.build()


class TestRunnerAcceptsCompositeSpecs:
    @pytest.mark.parametrize("protocol", ["causal", "mav+causal"])
    def test_run_workload_end_to_end(self, protocol):
        stats = run_workload(RunConfig(
            protocol=protocol,
            scenario=Scenario(regions=["VA", "OR"], servers_per_cluster=2),
            workload=YCSBConfig(key_count=500),
            clients_per_cluster=2,
            duration_ms=300.0,
            warmup_ms=50.0,
        ))
        assert stats.committed > 10
        assert stats.throughput_txn_s > 0
        # Stacked HAT clients still never wait on the wide area.
        assert stats.latency.mean < 20.0


class TestCausalPhenomena:
    def test_causal_history_satisfies_claimed_level(self):
        history = record_workload(
            "causal", Scenario(regions=["VA"], servers_per_cluster=3)
        )
        report = check_history(history, "Causal")
        assert report.satisfied, str(report)
        assert check_history(history, "RU").satisfied

    def test_mav_causal_history_satisfies_both_claims(self):
        single = record_workload(
            "mav+causal", Scenario(regions=["VA"], servers_per_cluster=3)
        )
        assert check_history(single, "Causal").satisfied
        geo = record_workload(
            "mav+causal", Scenario(regions=["VA", "OR"], servers_per_cluster=2)
        )
        assert check_history(geo, "MAV").satisfied
        assert check_history(geo, "RC").satisfied

    def test_causal_upholds_pram_across_mid_run_failover(self):
        """Every session keeps MR/MW/RYW while a partition forces failover."""
        scenario = Scenario(regions=["VA", "OR"], servers_per_cluster=2,
                            anti_entropy_interval_ms=600_000.0)
        history = record_workload("causal", scenario, partition_home_after=12)
        report = check_history(history, "PRAM")
        assert report.satisfied, str(report)

    def test_no_layer_control_violates_session_guarantees(self):
        """The same failover schedule without session layers shows the
        violations the causal stack prevents."""
        scenario = Scenario(regions=["VA", "OR"], servers_per_cluster=2,
                            anti_entropy_interval_ms=600_000.0)
        history = record_workload("eventual", scenario, partition_home_after=12)
        assert detect(history, MYR) or detect(history, N_MR)


class TestStackEquivalence:
    """The single-guarantee protocols behave identically through the stack."""

    @pytest.mark.parametrize("protocol", ["eventual", "read-committed", "mav"])
    def test_single_guarantee_runs_are_reproducible(self, protocol):
        def one_run():
            return run_workload(RunConfig(
                protocol=protocol,
                scenario=Scenario(regions=["VA", "OR"], servers_per_cluster=2),
                workload=YCSBConfig(key_count=500),
                clients_per_cluster=2,
                duration_ms=300.0,
                seed=11,
            ))
        a, b = one_run(), one_run()
        assert a.committed == b.committed
        assert a.latency.mean == pytest.approx(b.latency.mean)
