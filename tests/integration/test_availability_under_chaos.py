"""End-to-end chaos runs: the Table 3 availability claim, measured.

The availability experiment drives every protocol through the same
three-phase campaign (baseline, region partition, recovery).  The paper's
claim is an *ordering*: sticky-available stacks keep serving through the
partition while master/quorum configurations go dark for partitioned-away
clients — and the guarantees recorded under chaos must still pass their
Adya checks.
"""

import json

import pytest

from repro.adya.history import HistoryRecorder
from repro.adya.levels import check_history
from repro.bench.experiments import availability_experiment
from repro.bench.report import availability_report_json, format_availability

QUICK = dict(baseline_ms=1_000.0, partition_ms=2_500.0, recovery_ms=1_000.0,
             window_ms=500.0)


@pytest.fixture(scope="module")
def sweep():
    """One shared causal-vs-baselines sweep (the expensive part)."""
    return {result.protocol: result
            for result in availability_experiment(
                protocols=("causal", "eventual", "master"), **QUICK)}


class TestAvailabilityOrdering:
    def test_sticky_stack_serves_through_the_partition(self, sweep):
        causal = sweep["causal"]
        for group in causal.groups:
            scores = causal.phase_availability(group)
            assert scores["partition"] >= 0.9, (group, scores)
            assert scores["baseline"] >= 0.9

    def test_master_goes_dark_for_partitioned_away_clients(self, sweep):
        master = sweep["master"]
        for group in master.groups:
            scores = master.phase_availability(group)
            # Each region is cut off from ~half of the key masters, so
            # almost every transaction aborts: ~0% SLO windows.
            assert scores["partition"] <= 0.1, (group, scores)
        # ... yet it was perfectly healthy before the partition.
        assert master.min_phase_availability("baseline") >= 0.9

    def test_ordering_between_protocol_classes(self, sweep):
        """The paper's headline, as an inequality per client group."""
        for group in sweep["causal"].groups:
            hat_low = min(sweep[p].phase_availability(group)["partition"]
                          for p in ("causal", "eventual"))
            master_score = sweep["master"].phase_availability(group)["partition"]
            assert hat_low > master_score + 0.7

    def test_master_recovers_after_heal(self, sweep):
        # The last recovery window may still absorb retries; the phase as a
        # whole must be mostly available again.
        assert sweep["master"].min_phase_availability("recovered") >= 0.5

    def test_timeline_artifact_renders_and_serializes(self, sweep):
        results = list(sweep.values())
        text = format_availability(results)
        assert "partition" in text and "causal" in text and "#" in text
        payload = json.dumps(availability_report_json(results),
                             allow_nan=False)
        decoded = json.loads(payload)
        assert {p["protocol"] for p in decoded["protocols"]} == set(sweep)

    def test_aggregate_stats_match_window_totals(self, sweep):
        for result in sweep.values():
            windowed = sum(w.committed for t in result.groups.values()
                           for w in t.windows)
            # Windows only cover [0, duration); transactions committing in
            # the grace period are aggregate-only.
            assert windowed <= result.stats.committed


class TestAdyaChecksUnderChaos:
    @pytest.mark.parametrize("protocol,level", [
        ("causal", "PRAM"),
        ("read-committed", "RC"),
    ])
    def test_history_recorded_under_chaos_passes_claimed_level(self, protocol,
                                                               level):
        recorder = HistoryRecorder()
        availability_experiment(protocols=(protocol,), recorder=recorder,
                                baseline_ms=400.0, partition_ms=1_200.0,
                                recovery_ms=400.0, window_ms=400.0)
        history = recorder.build()
        assert len(history.committed()) > 50
        report = check_history(history, level)
        assert report.satisfied, str(report)
