"""End-to-end elasticity: availability and safety through membership churn.

The elasticity campaign rebalances a cluster *while* a region partition is
in force — the paper's availability claim at its hardest.  The ordering
must hold: sticky HAT stacks keep serving through the partitioned
rebalance, the master baseline goes dark; and the data moved by handoff
must stay safe — every moved key readable at its new owner, and the
recorded histories still passing the stack's declared Adya checks.
"""

import pytest

from repro.adya.history import HistoryRecorder
from repro.adya.levels import check_history
from repro.bench.experiments import elasticity_experiment
from repro.bench.report import elasticity_report_json, format_elasticity

QUICK = dict(baseline_ms=1_000.0, scale_out_ms=1_250.0, partition_ms=2_000.0,
             scale_in_ms=1_250.0, recovery_ms=750.0, window_ms=250.0)


@pytest.fixture(scope="module")
def sweep():
    """One shared HAT-versus-master elasticity sweep (the expensive part)."""
    return {result.protocol: result
            for result in elasticity_experiment(
                protocols=("eventual", "causal", "master"), **QUICK)}


class TestAvailabilityThroughRebalance:
    def test_hat_stacks_serve_through_the_partitioned_rebalance(self, sweep):
        for protocol in ("eventual", "causal"):
            result = sweep[protocol]
            for group in result.groups:
                scores = result.phase_availability(group)
                assert scores["partitioned-rebalance"] >= 0.9, (protocol,
                                                                group, scores)
                assert scores["baseline"] >= 0.9

    def test_master_goes_dark_during_the_partitioned_rebalance(self, sweep):
        master = sweep["master"]
        assert master.min_phase_availability("partitioned-rebalance") <= 0.1
        assert master.min_phase_availability("baseline") >= 0.7

    def test_hat_stacks_also_survive_the_scale_in_drain(self, sweep):
        for protocol in ("eventual", "causal"):
            assert sweep[protocol].min_phase_availability("scale-in") >= 0.9

    def test_ordering_between_protocol_classes(self, sweep):
        for group in sweep["causal"].groups:
            hat_low = min(
                sweep[p].phase_availability(group)["partitioned-rebalance"]
                for p in ("causal", "eventual"))
            master_score = sweep["master"].phase_availability(
                group)["partitioned-rebalance"]
            assert hat_low > master_score + 0.7


class TestRebalanceAccounting:
    def test_every_protocol_ran_the_same_campaign(self, sweep):
        kinds = {p: [r.kind for r in result.rebalances]
                 for p, result in sweep.items()}
        assert set(map(tuple, kinds.values())) == {("join", "join", "leave")}
        for result in sweep.values():
            assert all(r.done for r in result.rebalances)

    def test_keys_moved_within_twice_the_consistent_hash_ideal(self, sweep):
        # HAT runs write enough data for the fraction to be meaningful.
        for protocol in ("eventual", "causal"):
            record = sweep[protocol].first_join()
            assert record is not None and record.cluster_keys_total > 100
            fraction = record.keys_moved_fraction
            assert fraction <= 2.0 * record.ideal_fraction, record.as_dict()
            assert fraction >= record.ideal_fraction / 2.0, record.as_dict()

    def test_handoff_volume_is_recorded(self, sweep):
        for protocol in ("eventual", "causal"):
            for record in sweep[protocol].rebalances:
                assert record.versions_moved > 0
                assert record.bytes_moved > 0
                assert record.duration_ms > 0

    def test_artifact_renders_and_serializes(self, sweep):
        import json

        results = list(sweep.values())
        text = format_elasticity(results)
        assert "partitioned-rebalance" in text and "ideal" in text
        payload = json.loads(json.dumps(elasticity_report_json(results),
                                        allow_nan=False))
        assert {p["protocol"] for p in payload["protocols"]} == set(sweep)
        first = next(p for p in payload["protocols"]
                     if p["protocol"] == "eventual")
        assert first["first_join"]["keys_moved_fraction"] is not None


class TestNoReadsLostInTransit:
    @pytest.mark.parametrize("protocol,level", [
        ("causal", "PRAM"),
        ("read-committed", "RC"),
    ])
    def test_history_through_churn_passes_claimed_level(self, protocol, level):
        """Post-handoff histories on moved keys keep the stack's guarantees.

        A lost handoff version would surface as a session-order violation
        (a client re-reading an older version of a moved key) or a
        vanished committed write — both fail the stack's Adya checks.
        """
        recorder = HistoryRecorder()
        history = _record_run(protocol, recorder)
        assert len(history.committed()) > 50
        report = check_history(history, level)
        assert report.satisfied, str(report)


def _record_run(protocol: str, recorder: HistoryRecorder):
    """One recorded elasticity run (in-process, single protocol)."""
    from repro.bench.runner import RunConfig, run_workload
    from repro.chaos.campaign import canonical_elasticity_campaign
    from repro.chaos.nemesis import Nemesis
    from repro.hat.testbed import Scenario, build_testbed
    from repro.workloads.ycsb import YCSBConfig

    scenario = Scenario(regions=["VA", "OR"], servers_per_cluster=2,
                        placement="ring", anti_entropy_max_per_round=32)
    testbed = build_testbed(scenario)
    campaign = canonical_elasticity_campaign(
        ["VA", "OR"], cluster=testbed.config.cluster_names[0],
        baseline_ms=500.0, scale_out_ms=800.0, partition_ms=1_000.0,
        scale_in_ms=800.0, recovery_ms=400.0)
    Nemesis(testbed, campaign).install()
    config = RunConfig(protocol=protocol, scenario=scenario,
                       workload=YCSBConfig(key_count=2_000),
                       clients_per_cluster=1,
                       duration_ms=campaign.duration_ms, warmup_ms=0.0,
                       seed=0, client_kwargs={"rpc_timeout_ms": 2_000.0})
    run_workload(config, testbed=testbed, recorder=recorder)
    # Every key the first join moved must be readable at its new owner.
    join = next(r for r in testbed.membership.records if r.kind == "join")
    assert join.done and join.moved_keys
    for key in join.moved_keys:
        owner = testbed.config.local_replica_for(key, join.cluster)
        assert testbed.servers[owner].store.data.versions(key), key
    return recorder.build()
