"""Unit tests for the bounded session pool."""

import pytest

from repro.errors import ReproError
from repro.loadgen.sessions import PendingRequest, SessionPool


def make_pool(testbed, size=2, max_queue=None):
    return SessionPool(testbed, "eventual", "cluster0-VA", size=size,
                       max_queue=max_queue)


def sleep_handler(env, duration_ms):
    """A handler that holds its session for a fixed simulated time."""
    def handle(client, session_id, request):
        yield env.timeout(duration_ms)
    return handle


def request(arrival_ms=0.0, user_id=0):
    return PendingRequest(arrival_ms=arrival_ms, user_id=user_id,
                          transaction=None)


class TestConstruction:
    def test_builds_one_client_per_slot(self, local_testbed):
        pool = make_pool(local_testbed, size=3)
        assert len(pool.sessions) == 3
        assert pool.session_ids == [0, 1, 2]
        assert all(client.node.home_cluster == "cluster0-VA"
                   for client in pool.sessions)

    def test_first_session_id_offsets_slot_ids(self, local_testbed):
        pool = SessionPool(local_testbed, "eventual", "cluster0-VA", size=2,
                           first_session_id=10)
        assert pool.session_ids == [10, 11]

    def test_rejects_empty_pool(self, local_testbed):
        with pytest.raises(ReproError):
            make_pool(local_testbed, size=0)

    def test_rejects_negative_queue_bound(self, local_testbed):
        with pytest.raises(ReproError):
            make_pool(local_testbed, max_queue=-1)

    def test_cannot_start_twice(self, local_testbed):
        pool = make_pool(local_testbed)
        pool.start(sleep_handler(local_testbed.env, 1.0))
        with pytest.raises(ReproError):
            pool.start(sleep_handler(local_testbed.env, 1.0))


class TestQueueing:
    def test_serves_every_admitted_request(self, local_testbed):
        env = local_testbed.env
        pool = make_pool(local_testbed, size=2)
        pool.start(sleep_handler(env, 5.0))
        for i in range(6):
            assert pool.submit(request(user_id=i))
        env.run(until=100.0)
        assert pool.admitted == 6
        assert pool.served == 6
        assert pool.backlog == 0

    def test_queue_peak_tracks_worst_depth(self, local_testbed):
        env = local_testbed.env
        pool = make_pool(local_testbed, size=1)
        pool.start(sleep_handler(env, 10.0))
        for i in range(5):
            pool.submit(request(user_id=i))
        env.run(until=1.0)
        # One in service, four waiting: the peak saw all five queued
        # (workers only drain the queue once the env starts running).
        assert pool.queue_peak == 5
        assert pool.busy == 1
        assert pool.depth == 4

    def test_sheds_beyond_max_queue(self, local_testbed):
        env = local_testbed.env
        pool = make_pool(local_testbed, size=1, max_queue=2)
        pool.start(sleep_handler(env, 10.0))
        results = [pool.submit(request(user_id=i)) for i in range(5)]
        # Workers haven't run yet, so the queue fills at 2 and sheds after.
        assert results == [True, True, False, False, False]
        assert pool.shed == 3
        env.run(until=100.0)
        assert pool.served == 2

    def test_backlog_counts_queued_plus_in_service(self, local_testbed):
        env = local_testbed.env
        pool = make_pool(local_testbed, size=2)
        pool.start(sleep_handler(env, 50.0))
        for i in range(3):
            pool.submit(request(user_id=i))
        env.run(until=1.0)
        assert pool.busy == 2
        assert pool.depth == 1
        assert pool.backlog == 3
