"""Acceptance: memory is bounded by the session pool, not the user count.

The issue's claim is that 10^6 logical users cost O(pool size) memory.
These tests pin the mechanism at two orders of magnitude apart (10^3 vs
10^5 users, identical otherwise): the number of protocol clients built is
exactly the pool size both times, latency storage stays a bounded digest
rather than a per-request list, and the measured allocation peak of the
run barely moves.
"""

import tracemalloc

from repro.hat.testbed import Scenario, build_testbed
from repro.hat.testbed import Testbed
from repro.loadgen import OpenLoopConfig, PoissonArrivals, run_open_loop


def _config(users):
    return OpenLoopConfig(
        protocol="eventual",
        scenario=Scenario(regions=["VA"], servers_per_cluster=2,
                          fixed_latency_ms=1.0),
        arrivals=PoissonArrivals(150.0),
        users=users,
        sessions_per_cluster=4,
        duration_ms=1_000.0,
        seed=5,
    )


def _run_counting_clients(users, monkeypatch):
    """Run once, returning (stats, number of protocol clients built)."""
    created = []
    original = Testbed.make_client

    def counting(self, *args, **kwargs):
        client = original(self, *args, **kwargs)
        created.append(client)
        return client

    monkeypatch.setattr(Testbed, "make_client", counting)
    stats = run_open_loop(_config(users))
    return stats, len(created)


def test_clients_scale_with_pool_not_users(monkeypatch):
    small_stats, small_clients = _run_counting_clients(1_000, monkeypatch)
    big_stats, big_clients = _run_counting_clients(100_000, monkeypatch)
    assert small_clients == big_clients == small_stats.sessions
    # Same arrival process, same seed: the offered load is identical; only
    # the user-id space grew.
    assert big_stats.offered == small_stats.offered
    assert big_stats.users == 100 * small_stats.users


def test_latency_storage_is_bounded():
    stats = run_open_loop(_config(100_000))
    # A sample list would hold one float per commit; the digest holds at
    # most buffer + centroids regardless of how many commits streamed in.
    assert stats.digest.count == stats.committed
    assert stats.digest.centroid_count() < 700


def test_allocation_peak_independent_of_user_count():
    def measured_peak(users):
        config = _config(users)
        testbed = build_testbed(config.scenario)
        tracemalloc.start()
        try:
            run_open_loop(config, testbed=testbed)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    small_peak = measured_peak(1_000)
    big_peak = measured_peak(100_000)
    # 100x the logical users must not show up as allocation growth; allow
    # generous noise (interpreter caches, tracemalloc itself) but nothing
    # resembling per-user state.
    assert big_peak < small_peak * 1.5 + 256 * 1024
