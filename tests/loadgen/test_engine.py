"""Integration tests for the open-loop traffic engine."""

import pytest

from repro.chaos.telemetry import TimelineTelemetry
from repro.errors import ReproError
from repro.hat.testbed import Scenario
from repro.loadgen import OpenLoopConfig, PoissonArrivals, run_open_loop


def config(**overrides):
    defaults = dict(
        protocol="eventual",
        scenario=Scenario(regions=["VA"], servers_per_cluster=2,
                          fixed_latency_ms=1.0),
        arrivals=PoissonArrivals(60.0),
        users=10_000,
        sessions_per_cluster=4,
        duration_ms=800.0,
        seed=11,
    )
    defaults.update(overrides)
    return OpenLoopConfig(**defaults)


class TestValidation:
    def test_requires_an_arrival_process(self):
        with pytest.raises(ReproError):
            OpenLoopConfig(protocol="eventual",
                           scenario=Scenario(regions=["VA"]), arrivals=None)

    def test_requires_at_least_one_user(self):
        with pytest.raises(ReproError):
            config(users=0)

    def test_total_sessions_spans_clusters(self):
        cfg = config(scenario=Scenario(regions=["VA", "OR"]),
                     sessions_per_cluster=3)
        assert cfg.total_sessions == 6


class TestRun:
    def test_basic_accounting(self):
        stats = run_open_loop(config())
        assert stats.offered > 0
        assert stats.committed > 0
        assert stats.shed == 0  # unbounded queue by default
        assert stats.completed + stats.backlog_final == stats.offered
        assert stats.latency.count == stats.committed
        assert stats.digest.count == stats.committed
        assert stats.backlog, "sampler should record backlog snapshots"

    def test_same_seed_is_deterministic(self):
        first = run_open_loop(config())
        second = run_open_loop(config())
        assert first.offered == second.offered
        assert first.committed == second.committed
        assert first.latency.p99 == second.latency.p99
        assert [s.as_dict() for s in first.backlog] == \
               [s.as_dict() for s in second.backlog]

    def test_different_seed_differs(self):
        first = run_open_loop(config())
        second = run_open_loop(config(seed=12))
        assert first.offered != second.offered or \
               first.latency.mean != second.latency.mean

    def test_max_queue_sheds_and_counts(self):
        # One slow session and a tiny queue: most arrivals must be shed.
        stats = run_open_loop(config(protocol="lock-sr",
                                     sessions_per_cluster=1, max_queue=1))
        assert stats.shed > 0
        assert stats.queue_peak <= 1
        assert stats.offered >= stats.completed + stats.shed

    def test_telemetry_receives_offered_and_queue_series(self):
        telemetry = TimelineTelemetry(window_ms=200.0)
        stats = run_open_loop(config(), telemetry=telemetry)
        timelines = telemetry.build()
        assert set(timelines) == {"VA"}
        windows = timelines["VA"].windows
        assert len(windows) == 4  # 800 ms / 200 ms
        assert sum(w.offered for w in windows) == stats.offered
        # Completions landing in the grace period (after the run's end)
        # count toward stats but fall outside every window.
        windowed = sum(w.committed for w in windows)
        assert 0 < windowed <= stats.committed
        assert all(w.queue_depth >= 0 for w in windows)
        # Latency in the windows is arrival-to-commit, same as the digest.
        assert sum(w.latency.count for w in windows) == windowed

    def test_open_loop_offered_rate_independent_of_protocol(self):
        # The whole point of open loop: a saturated protocol does not slow
        # arrivals down, it grows queueing delay (and backlog) instead.
        fast = run_open_loop(config(arrivals=PoissonArrivals(400.0)))
        slow = run_open_loop(config(arrivals=PoissonArrivals(400.0),
                                    protocol="lock-sr",
                                    sessions_per_cluster=1))
        assert slow.offered == fast.offered  # same seed, same arrivals
        assert slow.queue_peak > fast.queue_peak
        assert slow.latency.mean > fast.latency.mean
