"""Unit tests for the timeline telemetry layer."""

import json

import pytest

from repro.chaos.campaign import CampaignPhase
from repro.chaos.telemetry import (
    AvailabilitySLO,
    TimelineTelemetry,
    availability_score,
)
from repro.errors import ReproError


class FakeResult:
    def __init__(self, end_ms, committed=True, internal_abort=False):
        self.end_ms = end_ms
        self.committed = committed
        self.internal_abort = internal_abort


def record(telemetry, group, start_ms, end_ms=None, committed=True,
           internal=False):
    attempt = telemetry.begin(group, start_ms)
    if end_ms is not None:
        telemetry.complete(attempt, FakeResult(end_ms, committed, internal))
    return attempt


class TestWindowing:
    def test_outcomes_bucket_by_end_time(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 300.0)
        record(telemetry, "VA", 10.0, 50.0)                    # window 0
        record(telemetry, "VA", 90.0, 150.0)                   # window 1
        record(telemetry, "VA", 140.0, 160.0, committed=False)  # window 1
        record(telemetry, "VA", 200.0, 290.0, committed=False,
               internal=True)                                   # window 2
        windows = telemetry.build()["VA"].windows
        assert [w.committed for w in windows] == [1, 1, 0]
        assert [w.external_aborts for w in windows] == [0, 1, 0]
        assert [w.internal_aborts for w in windows] == [0, 0, 1]

    def test_latency_summary_per_window(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 200.0)
        record(telemetry, "VA", 0.0, 40.0)
        record(telemetry, "VA", 20.0, 80.0)
        windows = telemetry.build()["VA"].windows
        assert windows[0].latency.count == 2
        assert windows[0].latency.mean == pytest.approx(50.0)
        assert windows[1].latency.count == 0
        assert windows[1].latency.mean is None

    def test_result_after_run_end_not_bucketed(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 200.0)
        record(telemetry, "VA", 90.0, 450.0)  # commits in the grace period
        windows = telemetry.build()["VA"].windows
        assert sum(w.committed for w in windows) == 0
        # Slow but ultimately committing: latency, not a stall.
        assert all(w.stalled == 0 for w in windows)

    def test_window_spanning_abort_is_a_stall(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 300.0)
        # Wedged behind a partition until an RPC timeout aborts it.
        record(telemetry, "VA", 90.0, 250.0, committed=False)
        windows = telemetry.build()["VA"].windows
        assert [w.stalled for w in windows] == [0, 1, 0]
        assert windows[2].external_aborts == 1

    def test_groups_are_independent(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 100.0)
        record(telemetry, "VA", 0.0, 10.0)
        record(telemetry, "OR", 0.0, 20.0, committed=False)
        timelines = telemetry.build()
        assert timelines["VA"].windows[0].committed == 1
        assert timelines["OR"].windows[0].external_aborts == 1

    def test_build_requires_start_run(self):
        with pytest.raises(ReproError):
            TimelineTelemetry().build()

    def test_bad_parameters_rejected(self):
        with pytest.raises(ReproError):
            TimelineTelemetry(window_ms=0.0)
        with pytest.raises(ReproError):
            TimelineTelemetry().start_run(10.0, 10.0)


class TestStalls:
    def test_open_attempt_stalls_every_covered_window(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 400.0)
        record(telemetry, "VA", 120.0)  # never completes (wedged client)
        windows = telemetry.build()["VA"].windows
        assert [w.stalled for w in windows] == [0, 0, 1, 1]

    def test_fast_transactions_never_stall(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 200.0)
        record(telemetry, "VA", 10.0, 90.0)
        windows = telemetry.build()["VA"].windows
        assert all(w.stalled == 0 for w in windows)


class TestSLOScoring:
    def test_window_meets_default_slo(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 100.0)
        record(telemetry, "VA", 0.0, 10.0)
        window = telemetry.build()["VA"].windows[0]
        assert window.success_fraction == 1.0
        assert window.meets(AvailabilitySLO())

    def test_silent_window_fails_min_committed(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 100.0)
        window = telemetry.build().get("VA")
        assert window is None  # no traffic, no group
        score = availability_score([], AvailabilitySLO())
        assert score is None

    def test_error_storm_fails_success_fraction(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 100.0)
        record(telemetry, "VA", 0.0, 10.0)
        for t in range(5):
            record(telemetry, "VA", t * 10.0, t * 10.0 + 5.0, committed=False)
        window = telemetry.build()["VA"].windows[0]
        assert window.success_fraction == pytest.approx(1.0 / 6.0)
        assert not window.meets(AvailabilitySLO())

    def test_internal_aborts_do_not_hurt_availability(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 100.0)
        record(telemetry, "VA", 0.0, 10.0)
        record(telemetry, "VA", 0.0, 20.0, committed=False, internal=True)
        window = telemetry.build()["VA"].windows[0]
        assert window.success_fraction == 1.0
        assert window.meets(AvailabilitySLO())

    def test_p95_bound_and_stall_policy(self):
        slo = AvailabilitySLO(max_p95_latency_ms=50.0, allow_stalls=False)
        telemetry = TimelineTelemetry(window_ms=100.0, slo=slo)
        telemetry.start_run(0.0, 100.0)
        record(telemetry, "VA", 0.0, 80.0)  # latency 80 > bound
        window = telemetry.build()["VA"].windows[0]
        assert not window.meets(slo)

    def test_phase_availability(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 400.0)
        record(telemetry, "VA", 0.0, 50.0)
        record(telemetry, "VA", 100.0, 150.0)
        # Nothing commits in windows 2-3.
        timeline = telemetry.build()["VA"]
        phases = [CampaignPhase("good", 0.0, 200.0),
                  CampaignPhase("bad", 200.0, 400.0)]
        scores = timeline.phase_availability(phases, AvailabilitySLO())
        assert scores["good"] == 1.0
        assert scores["bad"] == 0.0


class TestSerialization:
    def test_windows_serialize_to_strict_json(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 300.0)
        record(telemetry, "VA", 0.0, 10.0)
        # Windows 1-2 are empty: their latency stats must be None, not NaN.
        windows = telemetry.build()["VA"].windows
        payload = json.dumps([w.as_dict() for w in windows], allow_nan=False)
        decoded = json.loads(payload)
        assert decoded[1]["latency"]["mean"] is None
        assert decoded[0]["committed"] == 1


class TestOfferedAndQueueSeries:
    def test_offer_buckets_by_arrival_time(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 300.0)
        for t in (10.0, 20.0, 150.0, 250.0):
            telemetry.offer("VA", t)
        windows = telemetry.build()["VA"].windows
        assert [w.offered for w in windows] == [2, 1, 1]

    def test_offered_can_exceed_completed(self):
        """Open-loop overload: arrivals outpace completions per window."""
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 100.0)
        for t in (0.0, 10.0, 20.0):
            telemetry.offer("VA", t)
        record(telemetry, "VA", 0.0, 50.0)
        window = telemetry.build()["VA"].windows[0]
        assert window.offered == 3
        assert window.committed == 1
        assert window.offered_rate_s == pytest.approx(30.0)
        assert window.completed_rate_s == pytest.approx(10.0)

    def test_queue_depth_keeps_window_max(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 200.0)
        telemetry.observe_queue_depth("VA", 10.0, 3)
        telemetry.observe_queue_depth("VA", 50.0, 9)
        telemetry.observe_queue_depth("VA", 80.0, 5)
        telemetry.observe_queue_depth("VA", 150.0, 1)
        windows = telemetry.build()["VA"].windows
        assert [w.queue_depth for w in windows] == [9, 1]

    def test_series_serialize(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 100.0)
        telemetry.offer("VA", 0.0)
        telemetry.observe_queue_depth("VA", 0.0, 2)
        payload = telemetry.build()["VA"].windows[0].as_dict()
        decoded = json.loads(json.dumps(payload, allow_nan=False))
        assert decoded["offered"] == 1
        assert decoded["queue_depth"] == 2


class TestRepeatableBuild:
    def test_build_twice_same_answer(self):
        """build() must be a pure snapshot: calling it twice (or completing
        more work in between) cannot corrupt earlier windows."""
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 300.0)
        record(telemetry, "VA", 10.0, 50.0)
        attempt = telemetry.begin("VA", 90.0)  # spans windows while open
        first = telemetry.build()["VA"].windows
        second = telemetry.build()["VA"].windows
        assert [w.as_dict() for w in first] == [w.as_dict() for w in second]
        # The in-flight attempt stalls windows in the snapshot only...
        assert [w.stalled for w in first] == [0, 1, 1]
        # ...and completing it afterwards still buckets correctly.
        telemetry.complete(attempt, FakeResult(120.0))
        final = telemetry.build()["VA"].windows
        assert [w.stalled for w in final] == [0, 0, 0]
        assert [w.committed for w in final] == [1, 1, 0]


class TestWindowBoundaries:
    """Regression: a boundary-exact observation counts in exactly one window."""

    def test_boundary_commit_counts_once(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 300.0)
        # Ends exactly on the 100 ms edge: it measures the interval that
        # just closed, so it belongs to window 0 — and only window 0.
        record(telemetry, "VA", 10.0, 100.0)
        windows = telemetry.build()["VA"].windows
        assert [w.committed for w in windows] == [1, 0, 0]
        assert sum(w.committed for w in windows) == 1

    def test_boundary_abort_counts_once_and_never_stalls_earlier(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 300.0)
        # Aborts exactly at t=200: attributed to window 1 (the interval it
        # closed), stalls only window 1 (which it strictly outlived is
        # none; it covered window 1 in full via [90, 200)).
        record(telemetry, "VA", 90.0, 200.0, committed=False)
        windows = telemetry.build()["VA"].windows
        assert sum(w.external_aborts for w in windows) == 1
        assert windows[1].external_aborts == 1
        # A completion landing exactly on a window's end does not also
        # stall that window: total accounting for this attempt is 1.
        total = sum(w.external_aborts + w.stalled for w in windows)
        assert total == 1

    def test_boundary_exact_at_run_start(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 200.0)
        # Degenerate: completes at t=0.0, the very first boundary.  There
        # is no earlier window, so it stays in window 0.
        record(telemetry, "VA", 0.0, 0.0)
        windows = telemetry.build()["VA"].windows
        assert [w.committed for w in windows] == [1, 0]

    def test_open_attempt_keeps_inclusive_stalls(self):
        telemetry = TimelineTelemetry(window_ms=100.0)
        telemetry.start_run(0.0, 300.0)
        record(telemetry, "VA", 100.0)  # never completes
        windows = telemetry.build()["VA"].windows
        assert [w.stalled for w in windows] == [0, 1, 1]


class TestJoinFaultWindows:
    def _window_dicts(self):
        return [{"index": i, "start_ms": i * 100.0,
                 "end_ms": (i + 1) * 100.0} for i in range(4)]

    def _fault(self, window_id, kind, targets, start_ms, end_ms):
        from repro.obs.trace import FaultWindow
        fault = FaultWindow(window_id=window_id, kind=kind, targets=targets,
                            start_ms=start_ms)
        fault.end_ms = end_ms
        return fault.as_dict()

    def test_overlap_stamps_fault_ids(self):
        from repro.chaos.telemetry import join_fault_windows
        faults = [self._fault(7, "partition", ("VA",), 150.0, 250.0)]
        windows = self._window_dicts()
        join_fault_windows(windows, faults)
        assert [w["faults"] for w in windows] == [[], [7], [7], []]

    def test_open_fault_covers_suffix(self):
        from repro.chaos.telemetry import join_fault_windows
        faults = [self._fault(1, "crash", ("s1",), 250.0, None)]
        windows = self._window_dicts()
        join_fault_windows(windows, faults)
        assert [w["faults"] for w in windows] == [[], [], [1], [1]]

    def test_zero_width_marker_lands_in_one_window(self):
        from repro.chaos.telemetry import join_fault_windows
        # A marker exactly on a window edge belongs to the window that
        # *starts* there (instants use half-open [start, end) windows).
        faults = [self._fault(3, "scale-out", ("c0",), 200.0, 200.0)]
        windows = self._window_dicts()
        join_fault_windows(windows, faults)
        assert [w["faults"] for w in windows] == [[], [], [3], []]
