"""Unit tests for campaign specs, the seeded generator, and compilation."""

import pytest

from repro.chaos.campaign import (
    CLEAR_PARTITION,
    CRASH,
    DEGRADE,
    ISOLATE,
    PARTITION,
    RECOVER,
    REJOIN,
    RESTORE,
    Campaign,
    CampaignAction,
    CampaignError,
    CampaignSpec,
    canonical_partition_campaign,
    compile_campaign,
    generate_campaign,
)
from repro.hat.testbed import Scenario, build_testbed

REGIONS = ["VA", "OR"]


def servers_of(scenario: Scenario):
    from repro.cluster.config import build_cluster_config
    config = build_cluster_config(scenario.cluster_regions(),
                                  scenario.servers_per_cluster)
    return config.all_servers


FULL_SPEC = CampaignSpec(duration_ms=10_000.0, partitions=2,
                         flapping_servers=1, crashes=2,
                         rolling_restart=True, degraded_epochs=1)


class TestSpecValidation:
    def test_negative_duration_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(duration_ms=-1.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(partitions=-1)
        with pytest.raises(CampaignError):
            CampaignSpec(crashes=-2)

    def test_bad_ranges_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(partition_duration_ms=(2_000.0, 1_000.0))
        with pytest.raises(CampaignError):
            CampaignSpec(crash_downtime_ms=(0.0, 100.0))

    def test_bad_duty_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(flap_duty=0.0)
        with pytest.raises(CampaignError):
            CampaignSpec(flap_duty=1.5)

    def test_bad_periods_and_restart_knobs_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(flap_period_ms=0.0)
        with pytest.raises(CampaignError):
            CampaignSpec(restart_downtime_ms=-500.0)
        with pytest.raises(CampaignError):
            CampaignSpec(restart_stagger_ms=-1.0)

    def test_pathological_flap_period_refused_at_generation(self):
        scenario = Scenario(regions=REGIONS, servers_per_cluster=1)
        spec = CampaignSpec(duration_ms=2_000.0, partitions=0,
                            flapping_servers=1, flap_period_ms=1e-6,
                            flap_duration_ms=(1_500.0, 1_500.0))
        with pytest.raises(CampaignError, match="isolate/rejoin cycles"):
            generate_campaign(spec, REGIONS, servers_of(scenario), seed=0)


class TestGenerator:
    def test_same_seed_same_campaign(self):
        scenario = Scenario(regions=REGIONS, servers_per_cluster=2)
        servers = servers_of(scenario)
        a = generate_campaign(FULL_SPEC, REGIONS, servers, seed=42)
        b = generate_campaign(FULL_SPEC, REGIONS, servers, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        scenario = Scenario(regions=REGIONS, servers_per_cluster=2)
        servers = servers_of(scenario)
        a = generate_campaign(FULL_SPEC, REGIONS, servers, seed=1)
        b = generate_campaign(FULL_SPEC, REGIONS, servers, seed=2)
        assert a.actions != b.actions

    def test_actions_sorted_and_within_horizon(self):
        scenario = Scenario(regions=REGIONS, servers_per_cluster=2)
        campaign = generate_campaign(FULL_SPEC, REGIONS, servers_of(scenario),
                                     seed=3)
        times = [action.at_ms for action in campaign.actions]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_partitions_do_not_overlap(self):
        scenario = Scenario(regions=REGIONS, servers_per_cluster=1)
        spec = CampaignSpec(duration_ms=10_000.0, partitions=3)
        campaign = generate_campaign(spec, REGIONS, servers_of(scenario), seed=5)
        epochs = []
        start = None
        for action in campaign.timeline():
            if action.kind == PARTITION:
                assert start is None, "nested partition epoch"
                start = action.at_ms
            elif action.kind == CLEAR_PARTITION:
                assert start is not None
                epochs.append((start, action.at_ms))
                start = None
        assert len(epochs) == 3
        for (_, end), (next_start, _) in zip(epochs, epochs[1:]):
            assert end <= next_start

    @pytest.mark.parametrize("seed", range(5))
    def test_same_family_epochs_never_overlap(self, seed):
        """One latency factor and one alive flag per server: an overlapping
        epoch's restore/recover would silently cancel a still-active one."""
        scenario = Scenario(regions=REGIONS, servers_per_cluster=2)
        spec = CampaignSpec(duration_ms=10_000.0, crashes=3,
                            degraded_epochs=3, flapping_servers=2)
        campaign = generate_campaign(spec, REGIONS, servers_of(scenario),
                                     seed=seed)
        for prefix in ("crash-", "degraded-", "flap-"):
            epochs = sorted((p.start_ms, p.end_ms) for p in campaign.phases
                            if p.name.startswith(prefix))
            assert len(epochs) >= 2
            for (_, end), (next_start, _) in zip(epochs, epochs[1:]):
                assert end <= next_start, (prefix, epochs)

    @pytest.mark.parametrize("seed", range(5))
    def test_crash_cycles_and_rolling_restart_share_one_timeline(self, seed):
        """Both knobs flip the same per-server alive flag, so no recover may
        fire inside another epoch's declared downtime."""
        scenario = Scenario(regions=REGIONS, servers_per_cluster=2)
        spec = CampaignSpec(duration_ms=10_000.0, partitions=0, crashes=2,
                            rolling_restart=True)
        campaign = generate_campaign(spec, REGIONS, servers_of(scenario),
                                     seed=seed)
        epochs = sorted((p.start_ms, p.end_ms) for p in campaign.phases
                        if p.name.startswith(("crash-", "rolling-restart")))
        assert len(epochs) == 3
        for (_, end), (next_start, _) in zip(epochs, epochs[1:]):
            assert end <= next_start, epochs
        # Replaying the alive-flag transitions per server never recovers a
        # server that is not down, nor crashes one that is already down.
        down = set()
        for action in campaign.timeline():
            if action.kind == CRASH:
                assert action.target not in down, action
                down.add(action.target)
            elif action.kind == RECOVER:
                assert action.target in down, action
                down.discard(action.target)
        assert not down

    def test_fault_families_emit_paired_actions(self):
        scenario = Scenario(regions=REGIONS, servers_per_cluster=2)
        campaign = generate_campaign(FULL_SPEC, REGIONS, servers_of(scenario),
                                     seed=7)
        kinds = [action.kind for action in campaign.actions]
        assert kinds.count(ISOLATE) == kinds.count(REJOIN) > 0
        # 2 crash cycles + a rolling restart of all 4 servers.
        assert kinds.count(CRASH) == kinds.count(RECOVER) == 2 + 4
        assert kinds.count(DEGRADE) == kinds.count(RESTORE) == 1

    def test_boundary_phases_bracket_the_faults(self):
        scenario = Scenario(regions=REGIONS, servers_per_cluster=1)
        spec = CampaignSpec(duration_ms=8_000.0, partitions=1)
        campaign = generate_campaign(spec, REGIONS, servers_of(scenario), seed=0)
        names = [phase.name for phase in campaign.phases]
        assert names[0] == "baseline"
        assert names[-1] == "recovered"
        assert "partition-1" in names

    def test_quiet_spec_yields_single_baseline_phase(self):
        scenario = Scenario(regions=REGIONS, servers_per_cluster=1)
        spec = CampaignSpec(duration_ms=1_000.0, partitions=0)
        campaign = generate_campaign(spec, REGIONS, servers_of(scenario), seed=0)
        assert campaign.actions == ()
        assert [p.name for p in campaign.phases] == ["baseline"]

    def test_single_region_partition_rejected(self):
        with pytest.raises(CampaignError):
            generate_campaign(CampaignSpec(partitions=1), ["VA"], ["s0"], seed=0)

    def test_phase_at(self):
        campaign = canonical_partition_campaign(REGIONS, 1_000.0, 2_000.0,
                                                1_000.0)
        assert campaign.phase_at(500.0) == "baseline"
        assert campaign.phase_at(1_500.0) == "partition"
        assert campaign.phase_at(3_500.0) == "recovered"
        assert campaign.phase_at(9_999.0) is None


class TestCanonicalCampaign:
    def test_three_phases_and_two_actions(self):
        campaign = canonical_partition_campaign(REGIONS, 1_000.0, 2_000.0, 500.0)
        assert campaign.duration_ms == 3_500.0
        assert [p.name for p in campaign.phases] == ["baseline", "partition",
                                                     "recovered"]
        kinds = [action.kind for action in campaign.actions]
        assert kinds == [PARTITION, CLEAR_PARTITION]
        assert campaign.actions[0].groups == (("VA",), ("OR",))

    def test_needs_two_regions(self):
        with pytest.raises(CampaignError):
            canonical_partition_campaign(["VA"])


class TestCompile:
    def test_canonical_campaign_applies_and_clears(self):
        testbed = build_testbed(Scenario(regions=REGIONS, servers_per_cluster=1))
        campaign = canonical_partition_campaign(REGIONS, 100.0, 200.0, 100.0)
        compile_campaign(campaign, testbed).install()
        va = testbed.config.cluster(testbed.config.cluster_names[0]).servers[0]
        orr = testbed.config.cluster(testbed.config.cluster_names[1]).servers[0]
        testbed.run(50.0)
        assert testbed.network.partitions.connected(va, orr)
        testbed.run(100.0)  # t=150, inside the partition
        assert not testbed.network.partitions.connected(va, orr)
        testbed.run(200.0)  # t=350, healed
        assert testbed.network.partitions.connected(va, orr)

    def test_crash_and_degrade_actions_compile(self):
        testbed = build_testbed(Scenario(regions=REGIONS, servers_per_cluster=1))
        victim = testbed.config.all_servers[0]
        campaign = Campaign(
            duration_ms=1_000.0,
            actions=(
                CampaignAction(at_ms=100.0, kind=CRASH, target=victim),
                CampaignAction(at_ms=300.0, kind=RECOVER, target=victim),
                CampaignAction(at_ms=400.0, kind=DEGRADE, factor=4.0),
                CampaignAction(at_ms=600.0, kind=RESTORE),
            ),
            phases=(),
        )
        compile_campaign(campaign, testbed).install()
        testbed.run(200.0)
        assert not testbed.servers[victim].alive
        testbed.run(150.0)  # t=350, recovered
        assert testbed.servers[victim].alive
        testbed.run(150.0)  # t=500, degraded epoch
        assert testbed.network.latency_factor == 4.0
        testbed.run(200.0)  # t=700, restored
        assert testbed.network.latency_factor == 1.0

    def test_unknown_kind_rejected(self):
        testbed = build_testbed(Scenario(regions=REGIONS, servers_per_cluster=1))
        campaign = Campaign(duration_ms=1.0, actions=(
            CampaignAction(at_ms=0.0, kind="meteor-strike"),), phases=())
        with pytest.raises(CampaignError):
            compile_campaign(campaign, testbed)


class TestMembershipActions:
    """The scale-out/scale-in/rebalance-storm campaign family."""

    def test_negative_membership_counts_rejected(self):
        for name in ("scale_outs", "scale_ins", "rebalance_storms"):
            with pytest.raises(CampaignError):
                CampaignSpec(**{name: -1})

    def test_bad_storm_knobs_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(storm_cycles=0)
        with pytest.raises(CampaignError):
            CampaignSpec(storm_period_ms=0.0)
        with pytest.raises(CampaignError):
            CampaignSpec(rebalance_phase_ms=(0.0, 100.0))

    def test_membership_events_require_cluster_names(self):
        spec = CampaignSpec(scale_outs=1)
        with pytest.raises(CampaignError):
            generate_campaign(spec, REGIONS, ["s0", "s1"], seed=0)

    def test_generator_emits_membership_actions_and_phases(self):
        from repro.chaos.campaign import SCALE_IN, SCALE_OUT

        spec = CampaignSpec(duration_ms=12_000.0, partitions=0,
                            scale_outs=1, scale_ins=1, rebalance_storms=1)
        clusters = ["cluster0-VA", "cluster1-OR"]
        campaign = generate_campaign(spec, REGIONS, ["s0", "s1"], seed=3,
                                     clusters=clusters)
        outs = [a for a in campaign.actions if a.kind == SCALE_OUT]
        ins = [a for a in campaign.actions if a.kind == SCALE_IN]
        # One standalone join, one standalone leave, plus storm cycles.
        assert len(outs) >= 2 and len(ins) >= 2
        assert all(a.target in clusters for a in outs + ins)
        labels = {p.name.split("-")[0] for p in campaign.phases}
        assert "storm" in labels
        # Determinism: same seed, same campaign.
        again = generate_campaign(spec, REGIONS, ["s0", "s1"], seed=3,
                                  clusters=clusters)
        assert campaign == again

    def test_membership_campaign_compiles_and_drives_the_coordinator(self):
        spec = CampaignSpec(duration_ms=3_000.0, partitions=0, scale_outs=1,
                            rebalance_phase_ms=(500.0, 800.0))
        scenario = Scenario(regions=["VA"], servers_per_cluster=2,
                            placement="ring", fixed_latency_ms=1.0)
        testbed = build_testbed(scenario)
        campaign = generate_campaign(spec, ["VA"], testbed.config.all_servers,
                                     seed=0, clusters=testbed.config.cluster_names)
        compile_campaign(campaign, testbed).install()
        testbed.run(3_000.0)
        records = testbed.membership.records
        assert [r.kind for r in records] == ["join"]
        assert records[0].done
        assert len(testbed.config.clusters[0].servers) == 3


class TestElasticityCampaign:
    def test_five_phases_in_order(self):
        from repro.chaos.campaign import canonical_elasticity_campaign

        campaign = canonical_elasticity_campaign(REGIONS, cluster="c0")
        assert [p.name for p in campaign.phases] == [
            "baseline", "scale-out", "partitioned-rebalance",
            "scale-in", "recovered"]
        ends = [p.end_ms for p in campaign.phases]
        starts = [p.start_ms for p in campaign.phases]
        assert starts[1:] == ends[:-1]  # contiguous
        assert campaign.duration_ms == ends[-1]

    def test_rebalance_happens_inside_the_partition(self):
        from repro.chaos.campaign import (
            SCALE_OUT, canonical_elasticity_campaign)

        campaign = canonical_elasticity_campaign(REGIONS, cluster="c0")
        partition = next(p for p in campaign.phases
                         if p.name == "partitioned-rebalance")
        mid_joins = [a for a in campaign.actions if a.kind == SCALE_OUT
                     and partition.contains(a.at_ms)]
        assert len(mid_joins) == 1

    def test_needs_two_regions(self):
        from repro.chaos.campaign import canonical_elasticity_campaign

        with pytest.raises(CampaignError):
            canonical_elasticity_campaign(["VA"], cluster="c0")
