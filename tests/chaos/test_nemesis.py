"""Unit tests for the nemesis: installation, narration, latency epochs."""

import pytest

from repro.chaos.campaign import (
    Campaign,
    CampaignAction,
    canonical_partition_campaign,
)
from repro.chaos.nemesis import Nemesis
from repro.errors import ReproError
from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction

REGIONS = ["VA", "OR"]


def run_txn(testbed, client, operations):
    return testbed.env.run_until_complete(
        client.execute(Transaction(list(operations)))
    )


class TestInstallation:
    def test_install_registers_and_double_install_raises(self):
        testbed = build_testbed(Scenario(regions=REGIONS, servers_per_cluster=1))
        nemesis = Nemesis(testbed, canonical_partition_campaign(REGIONS))
        assert not nemesis.installed
        nemesis.install()
        assert nemesis.installed
        with pytest.raises(ReproError):
            nemesis.install()

    def test_narration_logs_fired_events_in_order(self):
        testbed = build_testbed(Scenario(regions=REGIONS, servers_per_cluster=1))
        campaign = canonical_partition_campaign(REGIONS, 100.0, 200.0, 100.0)
        nemesis = Nemesis(testbed, campaign)
        nemesis.install()
        assert nemesis.log == []
        testbed.run(400.0)
        assert [entry.kind for entry in nemesis.log] == ["partition",
                                                         "clear-partition"]
        assert [entry.at_ms for entry in nemesis.log] == [100.0, 300.0]
        text = nemesis.narration()
        assert "partition" in text and "t=" in text

    def test_idle_nemesis_narrates_nothing(self):
        testbed = build_testbed(Scenario(regions=REGIONS, servers_per_cluster=1))
        nemesis = Nemesis(testbed, canonical_partition_campaign(REGIONS))
        assert "idle" in nemesis.narration()

    def test_phase_at_delegates_to_campaign(self):
        testbed = build_testbed(Scenario(regions=REGIONS, servers_per_cluster=1))
        campaign = canonical_partition_campaign(REGIONS, 100.0, 200.0, 100.0)
        nemesis = Nemesis(testbed, campaign)
        assert nemesis.phase_at(50.0) == "baseline"
        assert nemesis.phase_at(150.0) == "partition"


class TestDegradedLatencyEpoch:
    def test_latency_epoch_slows_transactions_then_recovers(self):
        testbed = build_testbed(Scenario(regions=["VA"], servers_per_cluster=1,
                                         fixed_latency_ms=1.0))
        campaign = Campaign(
            duration_ms=1_000.0,
            actions=(
                CampaignAction(at_ms=100.0, kind="degrade", factor=10.0),
                CampaignAction(at_ms=500.0, kind="restore"),
            ),
            phases=(),
        )
        Nemesis(testbed, campaign).install()
        client = testbed.make_client("eventual")
        ops = [Operation.write("x", 1), Operation.read("x")]

        before = run_txn(testbed, client, ops)
        testbed.run(200.0 - testbed.env.now)  # into the degraded epoch
        during = run_txn(testbed, client, ops)
        testbed.run(600.0 - testbed.env.now)  # past the restore
        after = run_txn(testbed, client, ops)

        # Only the network legs scale (server service time does not), so the
        # degraded run is several times slower, not exactly 10x.
        assert during.latency_ms > 4.0 * before.latency_ms
        assert after.latency_ms == pytest.approx(before.latency_ms, rel=0.2)
