"""Tests for scripted fault schedules."""

import pytest

from repro.errors import NetworkError
from repro.hat.testbed import Scenario, build_testbed
from repro.hat.transaction import Operation, Transaction
from repro.net.faults import FaultSchedule


@pytest.fixture
def testbed():
    return build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))


def run(testbed, client, operations):
    return testbed.env.run_until_complete(
        client.execute(Transaction(list(operations)))
    )


class TestScheduleConstruction:
    def test_timeline_is_sorted(self, testbed):
        schedule = FaultSchedule(testbed)
        schedule.heal(at_ms=500.0)
        schedule.partition_regions(at_ms=100.0, groups=[["VA"], ["OR"]])
        timeline = schedule.timeline()
        assert [event.at_ms for event in timeline] == [100.0, 500.0]

    def test_negative_time_rejected(self, testbed):
        with pytest.raises(NetworkError):
            FaultSchedule(testbed).heal(at_ms=-1.0)

    def test_unknown_server_rejected(self, testbed):
        with pytest.raises(NetworkError):
            FaultSchedule(testbed).crash_server(at_ms=10.0, server="ghost")

    def test_double_install_rejected(self, testbed):
        schedule = FaultSchedule(testbed)
        schedule.heal(at_ms=10.0)
        schedule.install()
        with pytest.raises(NetworkError):
            schedule.install()
        with pytest.raises(NetworkError):
            schedule.heal(at_ms=20.0)


class TestScheduledPartition:
    def test_partition_applies_and_heals_on_schedule(self, testbed):
        schedule = FaultSchedule(testbed)
        schedule.partition_regions(at_ms=1_000.0, groups=[["VA"], ["OR"]])
        schedule.heal(at_ms=5_000.0)
        schedule.install()

        quorum_client = testbed.make_client("quorum")
        # Before the partition: quorum writes succeed.
        assert run(testbed, quorum_client, [Operation.write("a", 1)]).committed
        # Advance into the partition window: quorum writes abort, HAT commits.
        testbed.run(2_000.0)
        assert not run(testbed, quorum_client, [Operation.write("b", 2)]).committed
        hat_client = testbed.make_client("read-committed")
        assert run(testbed, hat_client, [Operation.write("c", 3)]).committed
        # Advance past the heal: quorum recovers.
        testbed.run(20_000.0)
        assert run(testbed, quorum_client, [Operation.write("d", 4)]).committed

    def test_crash_and_recover_server(self, testbed):
        victim = testbed.config.all_servers[0]
        schedule = FaultSchedule(testbed)
        schedule.crash_server(at_ms=100.0, server=victim, recover_after_ms=1_000.0)
        schedule.install()
        testbed.run(200.0)
        assert not testbed.servers[victim].alive
        testbed.run(2_000.0)
        assert testbed.servers[victim].alive

    def test_isolate_and_rejoin(self, testbed):
        victim = testbed.config.all_servers[0]
        schedule = FaultSchedule(testbed)
        schedule.isolate_server(at_ms=50.0, server=victim)
        schedule.rejoin_server(at_ms=500.0, server=victim)
        schedule.install()
        testbed.run(100.0)
        assert not testbed.network.partitions.connected(victim,
                                                        testbed.config.all_servers[1])
        testbed.run(1_000.0)
        assert testbed.network.partitions.connected(victim,
                                                    testbed.config.all_servers[1])
