"""Unit tests for the datacenter topology."""

import pytest

from repro.errors import NetworkError
from repro.net.topology import (
    EC2_REGIONS,
    SCOPE_CROSS_REGION,
    SCOPE_INTER_AZ,
    SCOPE_INTRA_AZ,
    SCOPE_SAME_HOST,
    Topology,
    ec2_topology,
)


class TestTopology:
    def test_add_and_lookup_site(self):
        topology = Topology()
        site = topology.add_site("a", region="VA", zone="VA-a")
        assert topology.site("a") is site
        assert site.region == "VA"

    def test_default_zone_name(self):
        topology = Topology()
        site = topology.add_site("a", region="VA")
        assert site.zone == "VA-a"

    def test_duplicate_site_rejected(self):
        topology = Topology()
        topology.add_site("a", region="VA")
        with pytest.raises(NetworkError):
            topology.add_site("a", region="OR")

    def test_unknown_site_rejected(self):
        with pytest.raises(NetworkError):
            Topology().site("ghost")

    def test_scopes(self):
        topology = Topology()
        topology.add_site("a1", region="VA", zone="VA-a")
        topology.add_site("a2", region="VA", zone="VA-a")
        topology.add_site("b1", region="VA", zone="VA-b")
        topology.add_site("c1", region="OR", zone="OR-a")
        assert topology.scope("a1", "a1") == SCOPE_SAME_HOST
        assert topology.scope("a1", "a2") == SCOPE_INTRA_AZ
        assert topology.scope("a1", "b1") == SCOPE_INTER_AZ
        assert topology.scope("a1", "c1") == SCOPE_CROSS_REGION

    def test_regions_and_sites_in_region(self):
        topology = Topology()
        topology.add_site("a", region="VA")
        topology.add_site("b", region="OR")
        topology.add_site("c", region="VA", zone="VA-b")
        assert topology.regions() == ["OR", "VA"]
        assert {s.name for s in topology.sites_in_region("VA")} == {"a", "c"}

    def test_region_pairs(self):
        topology = Topology()
        for region in ("VA", "OR", "CA"):
            topology.add_site(region.lower(), region=region)
        assert set(topology.region_pairs()) == {("CA", "OR"), ("CA", "VA"), ("OR", "VA")}


class TestEC2Topology:
    def test_default_covers_all_eight_regions(self):
        topology = ec2_topology()
        assert sorted(topology.regions()) == sorted(EC2_REGIONS)

    def test_zone_and_host_counts(self):
        topology = ec2_topology(regions=["VA"], zones_per_region=3, hosts_per_zone=2)
        assert len(topology.sites) == 6
        zones = {site.zone for site in topology.sites.values()}
        assert zones == {"VA-a", "VA-b", "VA-c"}

    def test_unknown_region_rejected(self):
        with pytest.raises(NetworkError):
            ec2_topology(regions=["MOON"])
