"""Unit tests for the latency models (calibrated to Table 1)."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.latency import (
    EC2LatencyModel,
    FixedLatencyModel,
    TABLE_1C_RTT_MS,
    cross_region_rtt,
)
from repro.net.topology import ec2_topology


@pytest.fixture
def model():
    topology = ec2_topology(zones_per_region=2, hosts_per_zone=2)
    return EC2LatencyModel(topology)


class TestFixedLatencyModel:
    def test_constant(self):
        model = FixedLatencyModel(2.5)
        rng = random.Random(0)
        assert model.one_way(rng, "a", "b") == 2.5
        assert model.mean_rtt("a", "b") == 5.0

    def test_negative_rejected(self):
        with pytest.raises(NetworkError):
            FixedLatencyModel(-1.0)


class TestCrossRegionTable:
    def test_symmetric_lookup(self):
        assert cross_region_rtt("CA", "OR") == cross_region_rtt("OR", "CA") == 22.5

    def test_slowest_link_matches_paper(self):
        # Sao Paulo <-> Singapore is the paper's slowest pair: 362.8 ms.
        assert cross_region_rtt("SP", "SI") == pytest.approx(362.8)

    def test_all_pairs_present(self):
        regions = ["CA", "OR", "VA", "TO", "IR", "SY", "SP", "SI"]
        for i, a in enumerate(regions):
            for b in regions[i + 1:]:
                assert cross_region_rtt(a, b) > 0

    def test_same_region_rejected(self):
        with pytest.raises(NetworkError):
            cross_region_rtt("CA", "CA")


class TestEC2LatencyModel:
    def test_mean_rtt_by_scope(self, model):
        # Same host < intra-AZ < inter-AZ < cross-region.
        same = model.mean_rtt("VA-0-0", "VA-0-0")
        intra = model.mean_rtt("VA-0-0", "VA-0-1")
        inter = model.mean_rtt("VA-0-0", "VA-1-0")
        cross = model.mean_rtt("VA-0-0", "OR-0-0")
        assert same < intra < inter < cross

    def test_cross_region_uses_table_1c(self, model):
        assert model.mean_rtt("CA-0-0", "OR-0-0") == pytest.approx(22.5)
        assert model.mean_rtt("SP-0-0", "SI-0-0") == pytest.approx(362.8)

    def test_sample_mean_converges_to_calibration(self, model):
        rng = random.Random(1)
        samples = [model.sample_rtt(rng, "VA-0-0", "OR-0-0") for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(TABLE_1C_RTT_MS[("OR", "VA")], rel=0.1)

    def test_samples_have_dispersion(self, model):
        rng = random.Random(2)
        samples = [model.sample_rtt(rng, "SP-0-0", "SI-0-0") for _ in range(1000)]
        assert max(samples) > 1.3 * min(samples)

    def test_samples_are_positive(self, model):
        rng = random.Random(3)
        for _ in range(200):
            assert model.one_way(rng, "VA-0-0", "VA-0-1") > 0

    def test_override_matrix(self):
        topology = ec2_topology(regions=["CA", "OR"])
        model = EC2LatencyModel(topology, cross_region_overrides={("CA", "OR"): 99.0})
        assert model.mean_rtt("CA-0-0", "OR-0-0") == 99.0
