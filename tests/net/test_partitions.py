"""Unit tests for partition injection."""

import pytest

from repro.errors import NetworkError
from repro.net.partitions import PartitionManager


class TestPartitionManager:
    def test_fully_connected_by_default(self):
        manager = PartitionManager()
        assert manager.connected("a", "b")
        assert not manager.active

    def test_partition_splits_groups(self):
        manager = PartitionManager()
        manager.partition([["a", "b"], ["c"]])
        assert manager.connected("a", "b")
        assert not manager.connected("a", "c")
        assert not manager.connected("c", "b")
        assert manager.active

    def test_site_outside_all_groups_is_unreachable(self):
        manager = PartitionManager()
        manager.partition([["a", "b"]])
        assert not manager.connected("a", "z")
        assert not manager.connected("z", "a")

    def test_self_connectivity_always_holds(self):
        manager = PartitionManager()
        manager.partition([["a"], ["b"]])
        assert manager.connected("a", "a")
        manager.isolate("a")
        assert manager.connected("a", "a")

    def test_overlapping_groups_rejected(self):
        manager = PartitionManager()
        with pytest.raises(NetworkError):
            manager.partition([["a", "b"], ["b", "c"]])

    def test_isolate_and_rejoin(self):
        manager = PartitionManager()
        manager.isolate("a")
        assert not manager.connected("a", "b")
        manager.rejoin("a")
        assert manager.connected("a", "b")

    def test_heal_restores_connectivity(self):
        manager = PartitionManager()
        manager.partition([["a"], ["b"]])
        manager.isolate("c")
        manager.heal()
        assert manager.connected("a", "b")
        assert manager.connected("c", "a")
        assert not manager.active

    def test_reachable_from_filters(self):
        manager = PartitionManager()
        manager.partition([["a", "b"], ["c", "d"]])
        assert manager.reachable_from("a", ["b", "c", "d"]) == ["b"]

    def test_describe_snapshot(self):
        manager = PartitionManager()
        manager.partition([["b", "a"]])
        manager.isolate("z")
        snapshot = manager.describe()
        assert snapshot["groups"] == [["a", "b"]]
        assert snapshot["isolated"] == ["z"]
        assert snapshot["active"] is True


class TestPartitionStateTransitions:
    """partition() and partition_by() replace each other, never stack."""

    def test_partition_clears_stale_classifier(self):
        manager = PartitionManager()
        manager.partition_by(lambda site: None)  # everything unreachable
        manager.partition([["a", "b"], ["c"]])
        # The classifier would have vetoed a<->b; the static split must win.
        assert manager.connected("a", "b")
        assert not manager.connected("a", "c")

    def test_partition_by_clears_stale_groups(self):
        manager = PartitionManager()
        manager.partition([["a"], ["b"]])
        manager.partition_by(lambda site: "same")
        # The old groups would have vetoed a<->b; the classifier must win.
        assert manager.connected("a", "b")

    def test_clear_partition_keeps_isolations(self):
        manager = PartitionManager()
        manager.isolate("flappy")
        manager.partition([["a"], ["b"]])
        manager.clear_partition()
        assert manager.connected("a", "b")
        assert not manager.connected("flappy", "a")
        assert manager.active

    def test_clear_partition_removes_classifier_too(self):
        manager = PartitionManager()
        manager.partition_by(lambda site: None)
        manager.clear_partition()
        assert manager.connected("a", "b")
        assert not manager.active
