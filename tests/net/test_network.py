"""Unit tests for the message bus and RPC layer."""

import pytest

from repro.errors import NetworkError, RequestTimeout
from repro.net.latency import FixedLatencyModel
from repro.net.network import Network
from repro.net.partitions import PartitionManager
from repro.net.topology import Topology
from repro.sim import Environment, RandomStreams


def make_network(latency_ms=1.0):
    env = Environment()
    topology = Topology()
    for name in ("a", "b", "c"):
        topology.add_site(name, region="VA")
    network = Network(env, topology, FixedLatencyModel(latency_ms),
                      streams=RandomStreams(0), partitions=PartitionManager())
    return env, network


class TestSend:
    def test_message_delivered_after_latency(self):
        env, network = make_network(latency_ms=3.0)
        received = []
        network.register("b", lambda msg: received.append((env.now, msg.payload)))
        network.send("a", "b", "hello", payload={"x": 1})
        env.run()
        assert received == [(3.0, {"x": 1})]
        assert network.stats.delivered == 1

    def test_unregistered_destination_drops_message(self):
        env, network = make_network()
        network.send("a", "c", "hello")
        env.run()
        assert network.stats.delivered == 0

    def test_register_requires_known_site(self):
        _env, network = make_network()
        with pytest.raises(NetworkError):
            network.register("ghost", lambda msg: None)

    def test_double_register_rejected(self):
        _env, network = make_network()
        network.register("a", lambda msg: None)
        with pytest.raises(NetworkError):
            network.register("a", lambda msg: None)

    def test_partition_drops_messages(self):
        env, network = make_network()
        received = []
        network.register("b", lambda msg: received.append(msg))
        network.partitions.partition([["a"], ["b"]])
        network.send("a", "b", "hello")
        env.run()
        assert received == []
        assert network.stats.dropped_partition == 1

    def test_per_kind_counters(self):
        env, network = make_network()
        network.register("b", lambda msg: None)
        network.send("a", "b", "put")
        network.send("a", "b", "put")
        network.send("a", "b", "get")
        env.run()
        assert network.stats.per_kind == {"put": 2, "get": 1}


class TestRPC:
    def test_request_reply_round_trip(self):
        env, network = make_network(latency_ms=2.0)

        def server(message):
            network.reply(message, {"answer": message.payload["n"] * 2})

        network.register("b", server)
        network.register("a", lambda msg: None)
        future = network.rpc("a", "b", "double", {"n": 21})
        result = env.run_until_complete(future)
        assert result == {"answer": 42}
        assert env.now == pytest.approx(4.0)

    def test_rpc_timeout_when_partitioned(self):
        env, network = make_network()
        network.register("b", lambda msg: None)
        network.register("a", lambda msg: None)
        network.partitions.partition([["a"], ["b"]])
        future = network.rpc("a", "b", "ping", timeout_ms=50.0)
        with pytest.raises(RequestTimeout):
            env.run_until_complete(future)
        assert env.now == pytest.approx(50.0)
        assert network.stats.rpc_timeouts == 1

    def test_rpc_timeout_when_server_silent(self):
        env, network = make_network()
        network.register("b", lambda msg: None)  # never replies
        network.register("a", lambda msg: None)
        future = network.rpc("a", "b", "ping", timeout_ms=20.0)
        with pytest.raises(RequestTimeout):
            env.run_until_complete(future)

    def test_late_reply_after_timeout_is_ignored(self):
        env, network = make_network(latency_ms=1.0)
        stashed = []
        network.register("b", lambda msg: stashed.append(msg))
        network.register("a", lambda msg: None)
        future = network.rpc("a", "b", "slow", timeout_ms=5.0)
        # Reply only after the deadline has passed.
        env.schedule(10.0, lambda: network.reply(stashed[0], {"too": "late"}))
        with pytest.raises(RequestTimeout):
            env.run_until_complete(future)
        env.run()  # the late reply must not blow up
        assert future.triggered and not future.ok
