"""Tests for the ping measurement study (Table 1 / Figure 1)."""

import pytest

from repro.net.measurement import (
    cross_region_mean_table,
    format_table_1c,
    run_ping_study,
)
from repro.net.latency import TABLE_1A_MEAN_RTT_MS, TABLE_1B_MEAN_RTT_MS


@pytest.fixture(scope="module")
def study():
    study, topology, model = run_ping_study(
        samples_per_link=400,
        regions=["CA", "OR", "VA", "SP", "SI"],
        zones_per_region=3,
        hosts_per_zone=3,
    )
    return study


class TestPingStudy:
    def test_intra_az_matches_table_1a(self, study):
        trace = study.trace("CA-0-0", "CA-0-1")
        assert trace.mean == pytest.approx(TABLE_1A_MEAN_RTT_MS, rel=0.2)

    def test_inter_az_matches_table_1b(self, study):
        trace = study.trace("CA-0-0", "CA-1-0")
        assert trace.mean == pytest.approx(TABLE_1B_MEAN_RTT_MS, rel=0.2)

    def test_cross_region_matches_table_1c(self, study):
        matrix = cross_region_mean_table(study, regions=["CA", "OR", "VA", "SP", "SI"])
        assert matrix[("CA", "OR")] == pytest.approx(22.5, rel=0.15)
        assert matrix[("SP", "SI")] == pytest.approx(362.8, rel=0.15)

    def test_ordering_of_scopes(self, study):
        """Intra-AZ is 1.8-6.4x faster than inter-AZ and 40-647x faster than WAN."""
        intra = study.trace("CA-0-0", "CA-0-1").mean
        inter = study.trace("CA-0-0", "CA-1-0").mean
        cross = study.trace("CA-0-0", "OR-0-0").mean
        assert intra < inter < cross
        assert cross / intra > 20

    def test_p95_exceeds_mean(self, study):
        trace = study.trace("SP-0-0", "SI-0-0")
        assert trace.percentile(95) > trace.mean

    def test_cdf_is_monotone(self, study):
        cdf = study.trace("CA-0-0", "OR-0-0").cdf(points=50)
        rtts = [x for x, _ in cdf]
        fractions = [y for _, y in cdf]
        assert rtts == sorted(rtts)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_table_formatting(self, study):
        matrix = cross_region_mean_table(study, regions=["CA", "OR", "VA", "SP", "SI"])
        text = format_table_1c(matrix, regions=["CA", "OR", "VA", "SP", "SI"])
        assert "CA" in text and "SI" in text
        # One numeric cell per pair should appear.
        assert any(char.isdigit() for char in text)

    def test_determinism(self):
        study_a, _, _ = run_ping_study(samples_per_link=50, regions=["CA", "OR"], seed=5)
        study_b, _, _ = run_ping_study(samples_per_link=50, regions=["CA", "OR"], seed=5)
        assert study_a.trace("CA-0-0", "OR-0-0").mean == pytest.approx(
            study_b.trace("CA-0-0", "OR-0-0").mean
        )
