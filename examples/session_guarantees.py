#!/usr/bin/env python3
"""Session guarantees and stickiness (the paper's Section 4.1 and 5.1.3).

A user logs in and updates their profile.  With a *sticky* session (the
client keeps talking to the replica set that saw its writes, caching them
client-side), read-your-writes holds even when the home datacenter becomes
unreachable.  With a non-sticky session forced onto a different, stale
replica, the user reads the old profile — the read-your-writes violation the
paper proves unavoidable without stickiness.

Run with::

    python examples/session_guarantees.py
"""

from repro.hat import Operation, Scenario, Transaction, build_testbed
from repro.hat.sessions import SessionClient


def profile_update_scenario(sticky):
    testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))
    home = testbed.config.cluster_names[0]
    base = testbed.make_client("read-committed", home_cluster=home)
    session = SessionClient(base, sticky=sticky)

    # The user updates their profile in the home datacenter.
    write = testbed.env.run_until_complete(session.execute(
        Transaction([Operation.write("profile:alice", "new-avatar")])
    ))
    assert write.committed

    # The home datacenter's servers become unreachable before anti-entropy
    # has copied the update to the other region.
    home_servers = set(testbed.config.cluster(home).servers)
    testbed.network.partitions.partition_by(
        lambda site: None if site in home_servers else "rest"
    )

    read = testbed.env.run_until_complete(session.execute(
        Transaction([Operation.read("profile:alice")])
    ))
    return read.value_read("profile:alice"), session


def composite_causal_scenario():
    """The registry's composite ``causal`` client: all four session layers.

    A user posts a reply after reading a friend's message, then their home
    datacenter fails.  The causal stack (a) repairs the user's own stale
    reads from the session cache (MR + RYW) and (b) forwards the observed
    message and the user's earlier writes to the failover replicas before
    the reply lands (WFR + MW), so a reader in the other region never sees
    the reply without its causes.
    """
    testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2,
                                     anti_entropy_interval_ms=60_000.0))
    home, away = testbed.config.cluster_names
    friend = testbed.make_client("eventual", home_cluster=home)
    user = testbed.make_client("causal", home_cluster=home)
    reader = testbed.make_client("eventual", home_cluster=away)

    testbed.env.run_until_complete(friend.execute(
        Transaction([Operation.write("msg:bob", "hi alice!")])
    ))
    testbed.env.run_until_complete(user.execute(
        Transaction([Operation.read("msg:bob")])
    ))

    home_servers = set(testbed.config.cluster(home).servers)
    testbed.network.partitions.partition_by(
        lambda site: None if site in home_servers else "rest"
    )

    # The reply is written through the failover replica; the causal client
    # first forwards msg:bob (writes-follow-reads) to the same side.
    testbed.env.run_until_complete(user.execute(
        Transaction([Operation.write("msg:alice", "hi bob!")])
    ))
    observed = testbed.env.run_until_complete(reader.execute(
        Transaction([Operation.read("msg:alice"), Operation.read("msg:bob")])
    ))
    return user, observed


def main():
    print("Read-your-writes with and without stickiness")
    print("=" * 60)

    for sticky in (True, False):
        value, session = profile_update_scenario(sticky)
        label = "sticky session  " if sticky else "non-sticky      "
        print(f"{label}: read profile = {value!r:14}  "
              f"(cache hits: {session.state.cache_hits}, "
              f"unrepaired stale reads: {session.violations()})")

    print("\nThe sticky session serves the user's own write from its session")
    print("cache when the contacted replica is stale; the non-sticky session")
    print("observes the pre-update profile — read-your-writes, PRAM, and causal")
    print("consistency all require sticky availability (paper Table 3).")

    print("\nComposite causal client (registry spec 'causal')")
    print("=" * 60)
    user, observed = composite_causal_scenario()
    print(f"stack protocol  : {user.protocol_name}  "
          f"(layers: {[type(layer).__name__ for layer in user.layers]})")
    print(f"remote reader   : reply = {observed.value_read('msg:alice')!r}, "
          f"cause = {observed.value_read('msg:bob')!r}")
    print("\nBecause the causal stack forwards happened-before versions ahead")
    print("of its own writes, the reader observes the reply together with the")
    print("message it answers — writes follow reads even across the failover.")


if __name__ == "__main__":
    main()
