#!/usr/bin/env python3
"""Anomaly detection: record real protocol runs and check them with Adya.

Two demonstrations:

1. *What HATs guarantee* — a concurrent YCSB-style workload is run through
   the MAV protocol, its history is recorded, and the Adya checker confirms
   Read Committed and Monotonic Atomic View hold (no G0/G1/OTV anomalies).

2. *What HATs cannot prevent* — concurrent read-modify-write increments from
   two datacenters are run through a HAT protocol; the checker finds Lost
   Update witnesses, the anomaly Section 5.2.1 proves unavailable to prevent.
   The same workload through the two-phase-locking baseline is anomaly-free.

Run with::

    python examples/anomaly_detection.py
"""

from repro.adya.history import HistoryRecorder
from repro.adya.levels import check_history, strongest_satisfied
from repro.adya.phenomena import LOST_UPDATE, detect
from repro.hat import Operation, Scenario, Transaction, build_testbed
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


def record_mav_workload():
    testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))
    recorder = HistoryRecorder()
    env = testbed.env

    def client_loop(client, workload, count=30):
        for _ in range(count):
            yield client.execute(workload.next_transaction())

    for index, cluster in enumerate(testbed.config.cluster_names * 2):
        client = testbed.make_client("mav", home_cluster=cluster, recorder=recorder)
        workload = YCSBWorkload(YCSBConfig(operations_per_transaction=4, key_count=50),
                                seed=index, session_id=index)
        env.process(client_loop(client, workload))
    env.run(until=env.now + 60_000.0)
    return recorder.build()


def record_counter_contention(protocol):
    testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=1))
    recorder = HistoryRecorder()
    env = testbed.env

    def increment_loop(client, repetitions=12):
        guess = 0
        for _ in range(repetitions):
            result = yield client.execute(Transaction([
                Operation.read("counter"),
                Operation.write("counter", guess + 1),
            ]))
            observed = result.value_read("counter") or 0
            guess = max(guess, observed) + 1

    for cluster in testbed.config.cluster_names:
        client = testbed.make_client(protocol, home_cluster=cluster, recorder=recorder)
        env.process(increment_loop(client))
    env.run(until=env.now + 120_000.0)
    return recorder.build()


def main():
    print("1. MAV workload, checked against the Adya levels")
    print("-" * 60)
    history = record_mav_workload()
    for level in ("RU", "RC", "MAV", "SI"):
        report = check_history(history, level)
        status = "satisfied" if report.satisfied else "violated"
        print(f"   {level:>4}: {status}")
    print(f"   levels satisfied: {', '.join(strongest_satisfied(history))}")

    print("\n2. Concurrent counter increments (Lost Update demonstration)")
    print("-" * 60)
    for protocol in ("read-committed", "two-phase-locking"):
        history = record_counter_contention(protocol)
        witnesses = detect(history, LOST_UPDATE)
        print(f"   {protocol:>18}: {len(witnesses)} Lost Update witness(es)")
        for witness in witnesses[:2]:
            print(f"       {witness}")
    print("\nThe HAT protocol stays available but loses updates under write-write")
    print("contention; the serializable baseline prevents the anomaly at the cost")
    print("of wide-area coordination (and unavailability under partitions).")


if __name__ == "__main__":
    main()
