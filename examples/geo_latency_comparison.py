#!/usr/bin/env python3
"""Geo-replication latency study: a miniature Figure 3.

Sweeps the same YCSB workload over three deployments — one datacenter, two
regions, five regions — for the eventual, Read Committed, MAV, and master
configurations, and prints mean latency and throughput for each.  The paper's
shape to look for: the HAT configurations barely notice geo-distribution,
while ``master`` latency grows by one to two orders of magnitude.

Run with::

    python examples/geo_latency_comparison.py
"""

from repro.bench.experiments import FIGURE_PROTOCOLS, figure3_geo_replication
from repro.bench.report import format_latency_and_throughput

DEPLOYMENTS = ("A-single-dc", "B-two-regions", "C-five-regions")


def main():
    print("YCSB on HAT and non-HAT configurations across deployments")
    print("=" * 64)
    for deployment in DEPLOYMENTS:
        points = figure3_geo_replication(
            deployment=deployment,
            client_counts=(4, 8),
            protocols=FIGURE_PROTOCOLS,
            duration_ms=500.0,
            servers_per_cluster=2,
        )
        print(f"\n--- deployment {deployment} ---")
        print(format_latency_and_throughput(points))

    print("\nReading the tables: 'master' mean latency tracks the wide-area RTT")
    print("(tens to hundreds of milliseconds) as soon as clusters span regions,")
    print("while eventual / read-committed / mav remain at datacenter-local")
    print("latency — the one-to-three orders of magnitude gap of Section 6.3.")


if __name__ == "__main__":
    main()
