#!/usr/bin/env python3
"""Trace an anomaly back to its cause: spans, critical paths, provenance.

The paper catalogs which anomalies (Adya's G0, G1, lost update, ...) each
HAT isolation level admits.  This example goes one step further and asks
*where a specific anomaly came from*: it runs a TPC-C-style workload with
per-transaction tracing enabled while a nemesis partitions Virginia from
Oregon, audits the history for anomalies, and joins each anomaly back to
the traces of the transactions that produced it — plus any fault window
they overlapped.  Alongside, it decomposes arrival-to-commit latency into
critical-path segments (queueing, rtt, service, lock wait, retry) for
healthy versus partitioned runs of two HAT stacks.

Run with::

    python examples/trace_an_anomaly.py

Writes ``trace.json`` (the ``python -m repro.bench trace --json DIR``
artifact) and ``trace_events.json`` — a Chrome trace-event file you can
load in Perfetto (https://ui.perfetto.dev) to see the implicated
transactions on a timeline against the fault track.
"""

import argparse
import json

from repro.bench.experiments import trace_experiment
from repro.bench.report import format_trace, trace_report_json


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shorter runs (for smoke tests)")
    args = parser.parse_args(argv)
    scale = 0.5 if args.quick else 1.0
    stacks, provenance = trace_experiment(
        protocols=("eventual", "causal"),
        duration_ms=1_200.0 * scale,
        baseline_ms=800.0 * scale,
        partition_ms=1_600.0 * scale,
        recovery_ms=800.0 * scale,
        key_count=1_000,
    )
    print(format_trace(stacks, provenance))
    print()

    with open("trace.json", "w") as handle:
        json.dump(trace_report_json(stacks, provenance), handle, indent=2,
                  allow_nan=False)
    with open("trace_events.json", "w") as handle:
        json.dump(provenance.chrome, handle, indent=2, allow_nan=False)
    print("(wrote trace.json and trace_events.json — load the latter in "
          "Perfetto)")

    joined = provenance.provenance
    entries = joined["entries"]
    if entries:
        first = entries[0]
        traces = sorted({t["trace_id"] for t in first["traces"]})
        where = (f"warehouse {first['warehouse']} district "
                 f"{first['district']} order {first['order_id']}")
        print(f"\nExample: a {first['anomaly']} anomaly at {where} "
              f"involves traces {traces}"
              + (f", inside fault window(s) {sorted(first['fault_windows'])}"
                 if first["fault_windows"] else "") + ".")
    print(f"\n{joined['anomalies_joined']} anomalies joined to traces, "
          f"{joined['anomalies_under_fault']} of them inside a fault "
          "window: weak isolation admits these anomalies even when the "
          "network is healthy, but the partition concentrates them — and "
          "the trace shows exactly which transactions raced.")


if __name__ == "__main__":
    main()
