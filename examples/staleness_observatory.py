#!/usr/bin/env python3
"""How stale do HAT reads actually get?  Measure it, don't guess.

The paper concedes that HATs cannot bound recency, then argues (Section
2.3, citing the PBS work) that *observed* staleness is usually small.
This example quantifies both halves of that sentence with two probes
measured with oracle knowledge of the simulated cluster:

* **t-visibility** — commit-at-origin to install-at-each-replica lag,
  bucketed by commit time so writes stranded by a partition are charged
  to the partition even though their installs land after the heal;
* **k-staleness** — for every read served, how many newer committed
  versions existed anywhere at that moment.

A nemesis walks each protocol stack through healthy operation, a
cross-region partition, and a post-heal rebalance.  Healthy, eventual's
p99 t-visibility is about one WAN round trip — observed staleness is
small.  Partitioned, the same stack's p99 blows up by an order of
magnitude, master's becomes unbounded (its replica pushes are dropped
and never retransmitted), and the bound-free concession stops being
theoretical.

Run with::

    python examples/staleness_observatory.py

Writes ``staleness.json`` (the same artifact
``python -m repro.bench staleness --json DIR`` produces) next to the
terminal rendering.
"""

import argparse
import json

from repro.bench.experiments import staleness_experiment
from repro.bench.report import format_staleness, staleness_report_json


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shorter campaign phases (for smoke tests)")
    args = parser.parse_args(argv)
    # Half-scale, not quarter-scale: the healthy phase must stay long
    # relative to one replication interval or the handful of commits whose
    # propagation straddles the partition edge dominates its p99.
    scale = 0.5 if args.quick else 1.0
    results = staleness_experiment(
        healthy_ms=2_000.0 * scale,
        partition_ms=4_000.0 * scale,
        rebalance_ms=4_000.0 * scale,
        window_ms=500.0 * scale,
    )
    print(format_staleness(results))
    print()

    with open("staleness.json", "w") as handle:
        json.dump(staleness_report_json(results), handle, indent=2,
                  allow_nan=False)
    print("(wrote staleness.json)")

    by_protocol = {result.protocol: result for result in results}
    eventual = by_protocol["eventual"]
    healthy = eventual.phase_quantile("healthy", "t_visibility_ms", "p99")
    partition = eventual.phase_quantile("partition", "t_visibility_ms", "p99")
    master = by_protocol["master"]
    master_partition = master.phase_quantile(
        "partition", "t_visibility_ms", "p99")
    print(f"\neventual, healthy: p99 t-visibility {healthy:.0f} ms — about "
          "one WAN round trip, the PBS 'usually fresh' story.")
    print(f"eventual, partitioned: p99 {partition:.0f} ms "
          f"({partition / healthy:.0f}x worse) — every cross-region install "
          "waits for the heal plus the anti-entropy drain.")
    if master_partition is None:
        print("master, partitioned: no observation at all — its replica "
              "pushes were dropped and are never retransmitted, so the lag "
              "is censored, not small.")
    print("\nRecency under HATs is an operating-conditions property, not a "
          "protocol guarantee: the same stack is fresh when the network is "
          "healthy and unboundedly stale when it is not.")


if __name__ == "__main__":
    main()
