#!/usr/bin/env python3
"""TPC-C on Highly Available Transactions (the paper's Section 6.2).

Four parts:

1. The static requirements analysis: which of the five TPC-C transactions can
   execute as HATs, and what each one needs.
2. A live run of the TPC-C mix through the MAV configuration, with the TPC-C
   consistency conditions checked afterwards.
3. The failure case: concurrent New-Order transactions on opposite sides of a
   network partition keep committing (availability!) but break the
   *sequential* order-id requirement — exactly the coordination HATs cannot
   provide.
4. The measurement: the pluggable TPC-C driver run closed-loop through the
   simulated cluster under a weak HAT stack and under serializable locking,
   with the recorded histories audited for duplicate order ids and double
   deliveries (the ``tpcc-sim`` bench artifact, in miniature).

Run with::

    python examples/tpcc_on_hats.py
"""

from repro.adya.history import HistoryRecorder
from repro.bench.runner import RunConfig, run_workload
from repro.hat import Scenario, build_testbed
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload
from repro.workloads.tpcc_analysis import (
    check_sequential_order_ids,
    check_state,
    check_unique_order_ids,
    hat_compliance_table,
)
from repro.workloads.tpcc_audit import audit_tpcc_history
from repro.workloads.tpcc_driver import TPCCDriverFactory


def run_tpcc_mix(transactions=150):
    testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))
    workload = TPCCWorkload(TPCCConfig(warehouses=2, districts_per_warehouse=2,
                                       customers_per_district=10, items=50), seed=42)
    client = testbed.make_client("mav")
    for txn in workload.initial_load():
        testbed.env.run_until_complete(client.execute(txn))
    committed = 0
    for _ in range(transactions):
        result = testbed.env.run_until_complete(
            client.execute(workload.next_transaction()))
        committed += int(result.committed)
    return workload, committed


def partitioned_new_orders(per_side=15):
    testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))
    testbed.partition_regions([["VA"], ["OR"]])
    issued = []
    for cluster in testbed.config.cluster_names:
        client = testbed.make_client("read-committed", home_cluster=cluster)
        side = TPCCWorkload(TPCCConfig(warehouses=1, districts_per_warehouse=1,
                                       customers_per_district=10, items=50), seed=7)
        for _ in range(per_side):
            result = testbed.env.run_until_complete(
                client.execute(side.new_order(warehouse=1, district=1)))
            assert result.committed, "HATs must stay available under the partition"
        issued.extend(side.state.issued_order_ids[(1, 1)])
    return issued


def tpcc_through_the_cluster(protocol, duration_ms=800.0):
    """Closed-loop TPC-C through the simulated cluster, history audited."""
    scenario = Scenario(regions=["VA", "OR"], servers_per_cluster=2)
    testbed = build_testbed(scenario)
    recorder = HistoryRecorder()
    factory = TPCCDriverFactory()
    config = RunConfig(protocol=protocol, scenario=scenario, workload=factory,
                       clients_per_cluster=2, duration_ms=duration_ms,
                       warmup_ms=0.0, seed=3)
    stats = run_workload(config, testbed=testbed, recorder=recorder)
    return stats, audit_tpcc_history(recorder.build())


def main():
    print("Section 6.2 — TPC-C requirements analysis")
    print("=" * 64)
    print(hat_compliance_table())

    print("\nRunning the TPC-C mix through the MAV configuration...")
    workload, committed = run_tpcc_mix()
    report = check_state(workload.state)
    print(f"  transactions committed:                    {committed}")
    print(f"  Consistency Condition 1 (W_YTD = sum D_YTD) violations: "
          f"{len(report['condition_1'])}")
    print(f"  duplicate order ids:                       {len(report['unique_ids'])}")
    print(f"  negative stock levels:                     "
          f"{len(report['non_negative_stock'])}")

    print("\nConcurrent New-Orders across a network partition...")
    issued = partitioned_new_orders()
    sequential = check_sequential_order_ids({(1, 1): issued})
    unique = check_unique_order_ids({(1, 1): issued})
    print(f"  orders committed during the partition:     {len(issued)}")
    print(f"  ids assigned: {sorted(issued)}")
    print(f"  dense sequential-id violations (TPC-C 3.3.2.2-3): {len(sequential)}")
    print(f"  id collisions from naive per-side counters: {len(unique)} "
          f"(a HAT system avoids these by deriving ids from client id + "
          f"sequence number, at the cost of sequential ordering)")
    print("\nTPC-C through the simulated cluster (the tpcc-sim artifact)...")
    for protocol in ("read-committed", "lock-sr"):
        stats, audit = tpcc_through_the_cluster(protocol)
        print(f"  {protocol:<16} committed={stats.committed:<5} "
              f"orders={audit.orders_claimed:<4} "
              f"duplicate-ids={len(audit.duplicate_order_ids):<4} "
              f"gaps={len(audit.gapped_order_ids):<3} "
              f"double-deliveries={len(audit.double_deliveries)}")

    print("\nTakeaway: four of five TPC-C transactions run happily as HATs;")
    print("sequential district order ids are the part that fundamentally needs")
    print("unavailable coordination (or real-world compensation).")


if __name__ == "__main__":
    main()
