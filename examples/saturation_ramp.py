#!/usr/bin/env python3
"""Open-loop saturation: find the knee, then watch the backlog drain.

The closed-loop figures can never show overload: each simulated client
waits for its previous reply, so offered load politely falls as the system
slows.  The open-loop engine severs that feedback — load is a seeded
arrival process multiplexed over a bounded pool of reusable sessions, so
100,000 logical users cost a pool's worth of memory and the request rate
is the traffic model's choice, not the system's.

This example ramps offered load through an eventual HAT stack and the
serializable locking baseline, then replays a fixed gentle rate through
the canonical region-partition campaign.  Three headline numbers per
protocol:

* the **knee** — the highest committed txn/s any ramp window sustained,
* **p99 under ramp** — arrival-to-commit latency, queueing included,
* **drain** — how long the backlog built while partitioned takes to clear
  after heal (the HAT stack never goes dark, so it has nothing to drain).

Run with::

    python examples/saturation_ramp.py [--quick]

Writes ``saturation.json`` (the same artifact
``python -m repro.bench saturation --json DIR`` produces) next to the
terminal rendering.
"""

import argparse
import json

from repro.bench.experiments import saturation_experiment
from repro.bench.report import format_saturation, saturation_report_json


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller ramp and campaign (for smoke tests)")
    args = parser.parse_args(argv)
    quick = args.quick
    results = saturation_experiment(
        protocols=("eventual", "lock-sr"),
        users=10_000 if quick else 100_000,
        ramp_peak_rate_s=300.0 if quick else 600.0,
        ramp_ms=1_500.0 if quick else 6_000.0,
        baseline_ms=600.0 if quick else 1_500.0,
        partition_ms=1_200.0 if quick else 3_000.0,
        recovery_ms=2_500.0 if quick else 5_000.0,
        window_ms=250.0 if quick else 500.0,
    )
    print(format_saturation(results))
    print()

    with open("saturation.json", "w") as handle:
        json.dump(saturation_report_json(results), handle, indent=2,
                  allow_nan=False)
    print("(wrote saturation.json)")

    eventual, locking = results
    print()
    print(f"knee: eventual sustains {eventual.knee_txn_s:.0f} txn/s vs "
          f"{locking.knee_txn_s:.0f} txn/s for serializable locking "
          f"({eventual.knee_txn_s / max(locking.knee_txn_s, 1e-9):.0f}x).")
    drain = ("has no backlog to drain"
             if eventual.drain_ms is not None and eventual.drain_ms <= 0
             else f"drains in {eventual.drain_ms:.0f} ms"
             if eventual.drain_ms is not None else "never drains")
    print(f"after the partition heals, the eventual stack {drain}; "
          f"locking's partition backlog "
          + (f"drains in {locking.drain_ms:.0f} ms."
             if locking.drain_ms is not None else "never drains."))


if __name__ == "__main__":
    main()
