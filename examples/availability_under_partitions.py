#!/usr/bin/env python3
"""Availability over time: a HAT stack versus master under a partition.

The paper's Table 3 argues that causal HAT stacks stay (sticky) available
under network partitions while master-based configurations do not.  This
example measures that claim as a *timeline*: a nemesis partitions Virginia
from Oregon mid-run, and per-window telemetry scores each 500 ms window of
each region's clients against an SLO.  The causal stack keeps serving
through the partition; master goes dark for clients partitioned away from
their key masters, then recovers after the heal.

Run with::

    python examples/availability_under_partitions.py

Writes ``availability.json`` (the same artifact
``python -m repro.bench availability --json DIR`` produces) next to the
terminal rendering.
"""

import argparse
import json

from repro.bench.experiments import availability_experiment
from repro.bench.report import availability_report_json, format_availability


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shorter campaign phases (for smoke tests)")
    args = parser.parse_args(argv)
    scale = 0.25 if args.quick else 1.0
    results = availability_experiment(
        protocols=("causal", "master"),
        baseline_ms=1_500.0 * scale,
        partition_ms=3_000.0 * scale,
        recovery_ms=1_500.0 * scale,
        window_ms=500.0 * scale,
    )
    print(format_availability(results))
    print()

    with open("availability.json", "w") as handle:
        json.dump(availability_report_json(results), handle, indent=2,
                  allow_nan=False)
    print("(wrote availability.json)")

    causal, master = results
    for group in sorted(causal.groups):
        through = causal.phase_availability(group)["partition"]
        dark = master.phase_availability(group)["partition"]
        print(f"{group}: causal served {through:.0%} of partition windows; "
              f"master served {dark:.0%}")
    print("\nThat is the paper's claim in one artifact: the strongest "
          "sticky-available stack keeps serving through the partition, "
          "while the coordinated baseline cannot.")


if __name__ == "__main__":
    main()
