#!/usr/bin/env python3
"""Elastic scale-out: rebalancing a live cluster, even mid-partition.

The paper's availability argument is usually told with a static cluster;
real AP stores earn it while *changing shape*.  This example drives the
canonical elasticity campaign — baseline, a live scale-out (the joining
server streams owed version history and serves only after catch-up), a
region partition with a second rebalance inside it, a scale-in drain, and
recovery — for a causal HAT stack against the master baseline.

Two headline numbers come out:

* the causal stack serves ~100% of SLO windows through the partitioned
  rebalance while master goes dark, and
* the join moves only ~1/n of the cluster's keys (consistent hashing's
  minimal disruption), not the (n-1)/n a modulo rehash would move.

Run with::

    python examples/elastic_scale_out.py [--quick]

Writes ``elasticity.json`` (the same artifact
``python -m repro.bench elasticity --json DIR`` produces) next to the
terminal rendering.
"""

import argparse
import json

from repro.bench.experiments import elasticity_experiment
from repro.bench.report import elasticity_report_json, format_elasticity


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shorter campaign phases (for smoke tests)")
    args = parser.parse_args(argv)
    scale = 0.5 if args.quick else 1.0
    results = elasticity_experiment(
        protocols=("causal", "master"),
        baseline_ms=2_000.0 * scale,
        scale_out_ms=2_500.0 * scale,
        partition_ms=4_000.0 * scale,
        scale_in_ms=2_500.0 * scale,
        recovery_ms=1_500.0 * scale,
        window_ms=500.0 * scale,
    )
    print(format_elasticity(results))
    print()

    with open("elasticity.json", "w") as handle:
        json.dump(elasticity_report_json(results), handle, indent=2,
                  allow_nan=False)
    print("(wrote elasticity.json)")

    causal, master = results
    for group in sorted(causal.groups):
        through = causal.phase_availability(group)["partitioned-rebalance"]
        dark = master.phase_availability(group)["partitioned-rebalance"]
        print(f"{group}: causal served {through:.0%} of windows through the "
              f"partitioned rebalance; master served {dark:.0%}")
    join = causal.first_join()
    if join is not None and join.keys_moved_fraction is not None:
        print(f"\nThe join moved {join.keys_moved_fraction:.0%} of the "
              f"cluster's keys (consistent-hashing ideal: "
              f"{join.ideal_fraction:.0%}) — minimal disruption, measured: "
              f"{join.versions_moved} versions, "
              f"{join.bytes_moved / 1024:.0f} KiB, "
              f"{join.duration_ms:.1f} ms of handoff.")


if __name__ == "__main__":
    main()
