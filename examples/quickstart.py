#!/usr/bin/env python3
"""Quickstart: run transactions against a geo-replicated HAT deployment.

Builds a two-datacenter simulated cluster (Virginia + Oregon), runs the same
multi-item transaction through a HAT protocol (MAV) and through the
coordinated ``master`` configuration, and prints the latency difference —
the paper's headline observation in miniature.

Run with::

    python examples/quickstart.py
"""

from repro.hat import Operation, Scenario, Transaction, build_testbed
from repro.taxonomy.classification import availability_summary


def run_transfer(testbed, protocol):
    """A small 'transfer' transaction: write two accounts, read them back."""
    client = testbed.make_client(protocol)
    deposit = Transaction([
        Operation.write("account:alice", 100),
        Operation.write("account:bob", 200),
    ])
    result = testbed.env.run_until_complete(client.execute(deposit))
    # Give asynchronous replication / MAV stabilization a moment, then read.
    testbed.run(2000.0)
    audit = Transaction([
        Operation.read("account:alice"),
        Operation.read("account:bob"),
    ])
    audit_result = testbed.env.run_until_complete(client.execute(audit))
    return result, audit_result


def main():
    print("Highly Available Transactions — quickstart")
    print("=" * 60)

    for protocol in ("mav", "master"):
        # A fresh deployment per protocol: two clusters of three servers,
        # one in Virginia and one in Oregon (Table 1c: ~83 ms RTT apart).
        testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=3))
        write_result, audit_result = run_transfer(testbed, protocol)
        print(f"\nprotocol: {protocol}")
        print(f"  committed:        {write_result.committed}")
        print(f"  write latency:    {write_result.latency_ms:8.2f} ms")
        print(f"  audit latency:    {audit_result.latency_ms:8.2f} ms")
        print(f"  alice balance:    {audit_result.value_read('account:alice')}")
        print(f"  bob balance:      {audit_result.value_read('account:bob')}")

    print("\nWhy the difference?  The HAT protocol talks only to replicas in the")
    print("client's own datacenter; the master protocol pays a wide-area round")
    print("trip whenever a key's master lives in the other region.")

    print("\nTable 3 (availability classification of consistency models):")
    print(availability_summary().as_table())


if __name__ == "__main__":
    main()
