"""Section 6.2: TPC-C requirements analysis, executed on the simulated HATs.

The paper's claims, reproduced here as measurements:

* four of the five TPC-C transaction types are HAT-executable,
* Payment's integrity constraint (warehouse YTD = sum of district YTDs,
  TPC-C Consistency Condition 1) survives HAT execution because the rows are
  updated atomically (MAV),
* New-Order under HATs keeps order ids *unique* but cannot keep them densely
  *sequential* when clients on both sides of a partition assign ids
  concurrently — the condition that requires unavailable coordination.
"""

from conftest import scaled

from repro.hat.testbed import Scenario, build_testbed
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload, district_next_oid_key
from repro.workloads.tpcc_analysis import (
    check_sequential_order_ids,
    check_state,
    hat_compliance_table,
    hat_executable_count,
)


def run_tpcc_on_hat(protocol="mav", transactions=scaled(60, 300)):
    """Drive the TPC-C mix through one HAT client and validate the state."""
    testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))
    workload = TPCCWorkload(TPCCConfig(warehouses=2, districts_per_warehouse=2,
                                       customers_per_district=10, items=50), seed=1)
    client = testbed.make_client(protocol)
    env = testbed.env
    for txn in workload.initial_load():
        env.run_until_complete(client.execute(txn))
    committed = 0
    for _ in range(transactions):
        result = env.run_until_complete(client.execute(workload.next_transaction()))
        committed += int(result.committed)
    return testbed, workload, committed


def concurrent_new_orders_during_partition(count_per_side=scaled(10, 40)):
    """Two clients on opposite sides of a partition both run New-Orders for
    the same district, each assigning ids from its own (stale) counter."""
    testbed = build_testbed(Scenario(regions=["VA", "OR"], servers_per_cluster=2))
    testbed.partition_regions([["VA"], ["OR"]])
    env = testbed.env
    issued = []
    for cluster in testbed.config.cluster_names:
        client = testbed.make_client("read-committed", home_cluster=cluster)
        # Each side has its own driver state mirroring only what it can see.
        side = TPCCWorkload(TPCCConfig(warehouses=1, districts_per_warehouse=1,
                                       customers_per_district=10, items=50), seed=7)
        for _ in range(count_per_side):
            txn = side.new_order(warehouse=1, district=1)
            result = env.run_until_complete(client.execute(txn))
            assert result.committed  # HATs stay available during the partition
        issued.extend(side.state.issued_order_ids[(1, 1)])
    return issued


def test_tpcc_hat_analysis(benchmark, bench_print):
    testbed, workload, committed = benchmark.pedantic(
        run_tpcc_on_hat, rounds=1, iterations=1)

    report = check_state(workload.state)
    executable, total = hat_executable_count()

    lines = [
        hat_compliance_table(),
        "",
        f"HAT-executable transaction types: {executable} of {total}",
        f"transactions committed on the MAV testbed: {committed}",
        f"Consistency Condition 1 violations (W_YTD = sum D_YTD): "
        f"{len(report['condition_1'])}",
        f"duplicate order ids: {len(report['unique_ids'])}",
        f"negative stock levels: {len(report['non_negative_stock'])}",
    ]

    # Concurrent New-Orders across a partition: availability is preserved but
    # the sequential-id condition is not.
    partition_ids = concurrent_new_orders_during_partition()
    sequential_violations = check_sequential_order_ids({(1, 1): partition_ids})
    lines.append(
        f"order ids issued concurrently across a partition: {sorted(partition_ids)[:12]}..."
    )
    lines.append(
        f"TPC-C 3.3.2.2-3 (sequential ids) violations under partition: "
        f"{len(sequential_violations)}"
    )
    bench_print("Section 6.2: TPC-C on HATs", "\n".join(lines))

    assert (executable, total) == (4, 5)
    assert committed > 0
    assert report["condition_1"] == []
    assert report["unique_ids"] == []
    assert report["non_negative_stock"] == []
    # The unavailable requirement: dense sequential ids fail under partition.
    assert sequential_violations
