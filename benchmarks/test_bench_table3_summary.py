"""Table 3: highly available, sticky available, and unavailable models."""

from repro.taxonomy.classification import (
    availability_summary,
    cross_check_with_levels,
    unavailability_reasons,
)


def test_table3_availability_summary(benchmark, bench_print):
    summary = benchmark.pedantic(availability_summary, rounds=1, iterations=1)

    bench_print("Table 3: HAT availability classification", summary.as_table())

    assert set(summary.highly_available) == {
        "RU", "RC", "MAV", "I-CI", "P-CI", "WFR", "MR", "MW"}
    assert set(summary.sticky_available) == {"RYW", "PRAM", "Causal"}
    assert set(summary.unavailable) == {
        "CS", "SI", "RR", "1SR", "Recency", "Safe", "Regular", "Linearizable",
        "Strong-1SR"}

    # Every unavailable model cites a cause (Table 3's footnote markers), and
    # the classification is consistent with the Adya-level definitions.
    reasons = unavailability_reasons()
    assert all(reasons[code] for code in summary.unavailable)
    assert cross_check_with_levels() == []
