"""Shared configuration for the benchmark suite.

Every benchmark regenerates one table or figure from the paper's evaluation
and prints the corresponding rows/series.  Because the substrate is a
simulator, absolute numbers differ from the paper's EC2 deployment; the
benchmarks check and report the *shapes* (orderings, ratios, crossovers).

Scale: the default sweeps are sized to finish in a few minutes total.  Set
``REPRO_BENCH_SCALE=full`` for longer, higher-fidelity sweeps.
"""

from __future__ import annotations

import os

import pytest

#: "quick" (default) or "full".
SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def scaled(quick_value, full_value):
    """Pick a parameter according to the benchmark scale."""
    return full_value if SCALE == "full" else quick_value


@pytest.fixture
def bench_print(capsys):
    """Print a report so it survives pytest's output capturing."""
    def _print(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(body)
    return _print
