"""Figure 2: the partial order of HAT, sticky, and unavailable models."""

from repro.taxonomy.lattice import build_lattice
from repro.taxonomy.models import MODELS


def test_fig2_model_lattice(benchmark, bench_print):
    lattice = benchmark.pedantic(build_lattice, rounds=1, iterations=1)

    combinations = lattice.hat_combinations()
    strongest = lattice.strongest_hat_combination()
    lines = [
        f"models: {len(MODELS)}   edges: {len(lattice.edge_list())}",
        f"maximal model(s): {', '.join(lattice.maximal_models())}",
        f"strongest simultaneously-achievable HAT combination: "
        f"{', '.join(sorted(strongest))}",
        f"HAT combinations (antichains of HAT/sticky models): {len(combinations)}",
        "",
        "edges (weaker -> stronger):",
    ]
    lines += [f"  {a:>12} -> {b}" for a, b in lattice.edge_list()]
    bench_print("Figure 2: model strength lattice", "\n".join(lines))

    # Shape checks from the figure and Section 5.3.
    assert lattice.maximal_models() == ["Strong-1SR"]
    assert strongest == {"MAV", "P-CI", "Causal"}
    assert lattice.stronger_than("SI", "MAV")
    assert lattice.stronger_than("RR", "I-CI")
    assert not lattice.comparable("MAV", "Causal")
    # The figure's caption counts 144 HAT combinations; our enumeration is the
    # same order of magnitude (the exact count depends on which nodes are
    # treated as combinable — ours includes I-CI/P-CI variants the caption may
    # fold together).
    assert 100 <= len(combinations) <= 400
