"""Figure 4: transaction length versus throughput (clusters in VA and OR).

Shape targets: eventual, RC, and master per-operation throughput are flat in
transaction length, while MAV's declines as transactions grow because its
metadata (the sibling list) grows linearly with transaction length.
"""

from conftest import scaled

from repro.bench.experiments import figure4_transaction_length
from repro.bench.report import format_series

LENGTHS = scaled((1, 8, 32), (1, 2, 4, 8, 16, 32, 64, 128))
DURATION_MS = scaled(500.0, 1500.0)


def test_fig4_transaction_length(benchmark, bench_print):
    points = benchmark.pedantic(
        figure4_transaction_length,
        kwargs=dict(lengths=LENGTHS, duration_ms=DURATION_MS,
                    clients_per_cluster=scaled(3, 8)),
        rounds=1, iterations=1,
    )
    bench_print("Figure 4: transaction length vs. throughput (ops/s)",
                format_series(points, value="throughput_ops_s"))

    def ops_throughput(protocol, length):
        return next(p.throughput_ops_s for p in points
                    if p.protocol == protocol and p.x_value == length)

    shortest, longest = min(LENGTHS), max(LENGTHS)

    # MAV degrades with transaction length (metadata overhead)...
    mav_ratio = ops_throughput("mav", longest) / ops_throughput("mav", shortest)
    # ...more than Read Committed does over the same sweep.
    rc_ratio = ops_throughput("read-committed", longest) / \
        ops_throughput("read-committed", shortest)
    assert mav_ratio < rc_ratio

    # At single-operation transactions MAV is close to eventual (paper: within 18%).
    assert ops_throughput("mav", shortest) > 0.5 * ops_throughput("eventual", shortest)

    # Master remains far below the HAT configurations at every length.
    for length in LENGTHS:
        assert ops_throughput("master", length) < ops_throughput("eventual", length)
