"""Table 1: mean RTTs within an AZ, across AZs, and across regions."""

from conftest import scaled

from repro.net.latency import TABLE_1A_MEAN_RTT_MS, TABLE_1B_MEAN_RTT_MS
from repro.net.measurement import (
    cross_region_mean_table,
    format_table_1c,
    run_ping_study,
)

REGIONS = ["CA", "OR", "VA", "TO", "IR", "SY", "SP", "SI"]


def run_study():
    return run_ping_study(
        samples_per_link=scaled(300, 3000),
        regions=REGIONS,
        zones_per_region=3,
        hosts_per_zone=3,
    )


def test_table1_rtt_matrix(benchmark, bench_print):
    study, _topology, _model = benchmark.pedantic(run_study, rounds=1, iterations=1)

    intra = study.trace("CA-0-0", "CA-0-1").mean
    inter = study.trace("CA-0-0", "CA-1-0").mean
    matrix = cross_region_mean_table(study, regions=REGIONS)

    lines = [
        "Table 1a (within one AZ):    mean RTT "
        f"{intra:6.2f} ms   (paper: {TABLE_1A_MEAN_RTT_MS:.2f} ms)",
        "Table 1b (across AZs):       mean RTT "
        f"{inter:6.2f} ms   (paper: {TABLE_1B_MEAN_RTT_MS:.2f} ms)",
        "Table 1c (cross-region mean RTTs, ms):",
        format_table_1c(matrix, regions=REGIONS),
    ]
    bench_print("Table 1: EC2 round-trip times", "\n".join(lines))

    # Shape checks: the paper's orderings hold.
    assert intra < inter < matrix[("CA", "OR")]
    slowest = max(matrix.values())
    assert slowest == matrix[("SP", "SI")]
    # Cross-region is 40-647x slower than intra-AZ (paper Section 2.2).
    assert slowest / intra > 40
