"""Table 2: default and maximum isolation levels of 18 ACID/NewSQL databases."""

from repro.taxonomy.survey import format_table_2, survey_statistics


def test_table2_isolation_survey(benchmark, bench_print):
    stats = benchmark.pedantic(survey_statistics, rounds=1, iterations=1)

    body = format_table_2() + "\n\n" + "\n".join([
        f"databases surveyed:                    {stats.total}",
        f"serializable by default:               {stats.serializable_by_default}",
        f"no serializability option at all:      {stats.no_serializability_option}",
        f"default level achievable as a HAT:     {stats.default_hat_achievable}",
    ])
    bench_print("Table 2: isolation levels in the wild", body)

    # The paper's headline numbers (Section 3).
    assert stats.total == 18
    assert stats.serializable_by_default == 3
    assert stats.no_serializability_option == 8
