"""Figure 1: CDF of RTTs for intra-AZ, inter-AZ, and cross-region links."""

from conftest import scaled

from repro.net.measurement import run_ping_study

#: The links Figure 1 plots: an intra-AZ link, an inter-AZ link, a nearby
#: region pair (CA:OR), and the slowest region pair (SI:SP).  The ping study
#: measures intra-/inter-AZ links in the alphabetically first region (CA),
#: standing in for the paper's us-east links.
LINKS = [
    ("intra-AZ (east-b:east-b)", ("CA-0-0", "CA-0-1")),
    ("inter-AZ (east-c:east-d)", ("CA-1-0", "CA-2-0")),
    ("CA:OR", ("CA-0-0", "OR-0-0")),
    ("SI:SP", ("SI-0-0", "SP-0-0")),
]


def run_study():
    return run_ping_study(
        samples_per_link=scaled(500, 5000),
        regions=["CA", "OR", "VA", "SP", "SI"],
        zones_per_region=3,
        hosts_per_zone=3,
    )


def test_fig1_rtt_cdf(benchmark, bench_print):
    study, _topology, _model = benchmark.pedantic(run_study, rounds=1, iterations=1)

    lines = [f"{'link':<28} {'p10':>9} {'p50':>9} {'p90':>9} {'p99':>9}  (RTT ms)"]
    summaries = {}
    for label, (src, dst) in LINKS:
        trace = study.trace(src, dst)
        summaries[label] = trace
        lines.append(
            f"{label:<28} {trace.percentile(10):>9.2f} {trace.percentile(50):>9.2f} "
            f"{trace.percentile(90):>9.2f} {trace.percentile(99):>9.2f}"
        )
    bench_print("Figure 1: RTT CDFs by link class", "\n".join(lines))

    # Shape: the CDFs are ordered — intra-AZ strictly left of inter-AZ,
    # which is strictly left of both cross-region links, at every quantile.
    for quantile in (10, 50, 90):
        assert summaries["intra-AZ (east-b:east-b)"].percentile(quantile) < \
            summaries["inter-AZ (east-c:east-d)"].percentile(quantile)
        assert summaries["inter-AZ (east-c:east-d)"].percentile(quantile) < \
            summaries["CA:OR"].percentile(quantile)
        assert summaries["CA:OR"].percentile(quantile) < \
            summaries["SI:SP"].percentile(quantile)

    # Each CDF is a valid distribution function.
    for _label, (src, dst) in LINKS:
        cdf = study.trace(src, dst).cdf(points=100)
        fractions = [fraction for _rtt, fraction in cdf]
        assert fractions == sorted(fractions)
