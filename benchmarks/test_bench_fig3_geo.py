"""Figure 3: YCSB latency and throughput versus client count, by deployment.

Three sub-figures, as in the paper:

* 3A — two clusters inside one datacenter,
* 3B — clusters in Virginia and Oregon,
* 3C — five clusters across five regions.

Shape targets: within one datacenter, ``master`` costs roughly 2x the latency
of the HAT configurations; across regions, ``master`` latency jumps by one to
two orders of magnitude while eventual/RC/MAV stay near their single-DC
latency; MAV throughput is a constant factor below eventual/RC.
"""

import pytest
from conftest import scaled

from repro.bench.experiments import figure3_geo_replication
from repro.bench.report import format_latency_and_throughput

CLIENTS = scaled((2, 6), (4, 16, 48))
DURATION_MS = scaled(500.0, 2000.0)


def by_protocol(points, metric="mean_latency_ms"):
    """metric per protocol, averaged over the sweep's x-values."""
    grouped = {}
    for point in points:
        grouped.setdefault(point.protocol, []).append(getattr(point, metric))
    return {protocol: sum(values) / len(values) for protocol, values in grouped.items()}


@pytest.mark.parametrize("deployment,servers", [
    ("A-single-dc", scaled(2, 5)),
    ("B-two-regions", scaled(2, 5)),
    ("C-five-regions", scaled(1, 5)),
])
def test_fig3_geo_replication(benchmark, bench_print, deployment, servers):
    points = benchmark.pedantic(
        figure3_geo_replication,
        kwargs=dict(deployment=deployment, client_counts=CLIENTS,
                    duration_ms=DURATION_MS, servers_per_cluster=servers),
        rounds=1, iterations=1,
    )
    bench_print(f"Figure 3{deployment}: YCSB vs. number of clients",
                format_latency_and_throughput(points))

    latency = by_protocol(points, "mean_latency_ms")
    throughput = by_protocol(points, "throughput_txn_s")

    # HAT configurations beat master on throughput and latency everywhere.
    for hat in ("eventual", "read-committed", "mav"):
        assert throughput[hat] > throughput["master"]
        assert latency[hat] < latency["master"]

    if deployment == "A-single-dc":
        # Single datacenter: master is slower but within roughly an order of
        # magnitude (the paper reports ~2x latency, ~half the throughput).
        assert latency["master"] < 20 * latency["read-committed"]
    else:
        # Geo-replicated: master pays hundreds of ms; HATs stay local.
        assert latency["master"] > 50.0
        assert latency["read-committed"] < 30.0
        # One to two orders of magnitude separation (paper: 10-100x).
        assert latency["master"] / latency["read-committed"] > 10.0
