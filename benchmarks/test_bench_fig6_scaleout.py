"""Figure 6: scale-out — throughput versus total servers (VA + OR clusters).

Shape target: the HAT configurations are shared-nothing, so doubling the
servers (with a proportional number of clients) roughly doubles throughput;
MAV scales slightly sub-linearly (paper: 3.8x for a 5x server increase, due
to storage contention and anti-entropy amplification).
"""

from conftest import scaled

from repro.bench.experiments import figure6_scale_out
from repro.bench.report import format_series

SERVERS_PER_CLUSTER = scaled((2, 4, 8), (5, 10, 15, 25))
DURATION_MS = scaled(400.0, 1200.0)


def test_fig6_scale_out(benchmark, bench_print):
    points = benchmark.pedantic(
        figure6_scale_out,
        kwargs=dict(servers_per_cluster_values=SERVERS_PER_CLUSTER,
                    duration_ms=DURATION_MS,
                    clients_per_server=scaled(2, 3)),
        rounds=1, iterations=1,
    )
    bench_print("Figure 6: scale-out (total servers vs. txn/s)",
                format_series(points, value="throughput_txn_s"))

    def throughput(protocol, servers_per_cluster):
        return next(p.throughput_txn_s for p in points
                    if p.protocol == protocol and p.x_value == servers_per_cluster * 2)

    smallest, largest = min(SERVERS_PER_CLUSTER), max(SERVERS_PER_CLUSTER)
    expansion = largest / smallest

    for protocol in ("eventual", "read-committed", "mav"):
        ratio = throughput(protocol, largest) / throughput(protocol, smallest)
        # At least half of linear scaling, and actually growing.
        assert ratio > 0.5 * expansion, (protocol, ratio)
        assert throughput(protocol, largest) > throughput(protocol, smallest)

    # MAV's scaling factor does not exceed eventual's (it carries extra work
    # per write, so it can only do as well or worse).
    mav_ratio = throughput("mav", largest) / throughput("mav", smallest)
    eventual_ratio = throughput("eventual", largest) / throughput("eventual", smallest)
    assert mav_ratio <= eventual_ratio * 1.15
