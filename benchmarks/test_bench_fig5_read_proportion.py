"""Figure 5: read/write mix versus throughput (clusters in VA and OR).

Shape targets: with a read-only workload MAV is within a few percent of
eventual; as the write fraction grows, throughput of every configuration
drops and MAV's gap to eventual widens (writes are what carry MAV's
metadata and second-phase work).
"""

from conftest import scaled

from repro.bench.experiments import figure5_write_proportion
from repro.bench.report import format_series

WRITE_PROPORTIONS = scaled((0.0, 0.5, 1.0), (0.0, 0.2, 0.4, 0.6, 0.8, 1.0))
DURATION_MS = scaled(400.0, 1500.0)


def test_fig5_write_proportion(benchmark, bench_print):
    points = benchmark.pedantic(
        figure5_write_proportion,
        kwargs=dict(write_proportions=WRITE_PROPORTIONS, duration_ms=DURATION_MS,
                    clients_per_cluster=scaled(12, 24),
                    servers_per_cluster=scaled(2, 5)),
        rounds=1, iterations=1,
    )
    bench_print("Figure 5: write proportion vs. throughput (txn/s)",
                format_series(points, value="throughput_txn_s"))

    def throughput(protocol, proportion):
        return next(p.throughput_txn_s for p in points
                    if p.protocol == protocol and p.x_value == proportion)

    # All-reads: MAV within a small factor of eventual (paper: within 4.8%).
    assert throughput("mav", 0.0) > 0.7 * throughput("eventual", 0.0)

    # All-writes: every protocol is slower than all-reads, and MAV's relative
    # cost versus eventual grows (paper: within 33% at all writes).
    for protocol in ("eventual", "read-committed", "mav"):
        assert throughput(protocol, 1.0) < throughput(protocol, 0.0)
    read_gap = throughput("mav", 0.0) / throughput("eventual", 0.0)
    write_gap = throughput("mav", 1.0) / throughput("eventual", 1.0)
    assert write_gap <= read_gap + 0.05

    # Master stays well below the HAT configurations at every mix.
    for proportion in WRITE_PROPORTIONS:
        assert throughput("master", proportion) < throughput("read-committed", proportion)
