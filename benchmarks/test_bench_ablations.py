"""Ablation benchmarks: design choices beyond the paper's headline figures."""

from conftest import scaled

from repro.bench.ablations import (
    anti_entropy_visibility,
    coordinated_baselines,
    stickiness_ablation,
)


def test_ablation_anti_entropy_interval(benchmark, bench_print):
    """Visibility lag at remote clusters grows with the anti-entropy interval,
    while the number of gossip messages shrinks — the knob trades staleness
    for background load."""
    points = benchmark.pedantic(
        anti_entropy_visibility,
        kwargs=dict(intervals_ms=scaled((10.0, 100.0, 500.0),
                                        (5.0, 20.0, 100.0, 500.0)),
                    writes=scaled(15, 50)),
        rounds=1, iterations=1,
    )
    lines = [f"{'interval (ms)':>15} {'visibility lag (ms)':>21} {'gossip msgs':>13}"]
    for point in points:
        lines.append(f"{point.interval_ms:>15.0f} {point.mean_visibility_ms:>21.1f} "
                     f"{point.anti_entropy_messages:>13}")
    bench_print("Ablation: anti-entropy interval", "\n".join(lines))

    assert points[0].mean_visibility_ms < points[-1].mean_visibility_ms
    # Per committed write, the slow interval sends no more messages than the fast one.
    assert points[-1].anti_entropy_messages <= points[0].anti_entropy_messages * 1.5


def test_ablation_stickiness(benchmark, bench_print):
    """Sticky sessions repair every stale read from the session cache;
    non-sticky sessions observe read-your-writes violations (Section 5.1.3)."""
    result = benchmark.pedantic(
        stickiness_ablation, kwargs=dict(sessions=scaled(6, 20)),
        rounds=1, iterations=1,
    )
    bench_print("Ablation: stickiness and read-your-writes", "\n".join([
        f"sessions:                       {result.sessions}",
        f"violations with sticky cache:   {result.sticky_violations}",
        f"violations without stickiness:  {result.non_sticky_violations}",
    ]))
    assert result.sticky_violations == 0
    assert result.non_sticky_violations >= result.sessions * 0.8


def test_ablation_coordinated_baselines(benchmark, bench_print):
    """Master, two-phase locking, and quorum latency on a VA+OR deployment:
    every coordinated protocol pays wide-area round trips, and two-phase
    locking pays the most (one per lock plus commit)."""
    points = benchmark.pedantic(
        coordinated_baselines,
        kwargs=dict(duration_ms=scaled(800.0, 3000.0)),
        rounds=1, iterations=1,
    )
    lines = [f"{'protocol':>20} {'mean (ms)':>11} {'p95 (ms)':>10} "
             f"{'txn/s':>8} {'aborts':>8}"]
    for point in points:
        lines.append(f"{point.protocol:>20} {point.mean_latency_ms:>11.1f} "
                     f"{point.p95_latency_ms:>10.1f} {point.throughput_txn_s:>8.1f} "
                     f"{point.abort_rate:>8.2f}")
    bench_print("Ablation: coordinated (non-HAT) baselines", "\n".join(lines))

    by_protocol = {point.protocol: point for point in points}
    # Every coordinated protocol pays at least one WAN round trip per txn.
    for point in points:
        assert point.mean_latency_ms > 30.0
    # 2PL is the most expensive: a lock round trip per operation plus 2PC.
    assert by_protocol["two-phase-locking"].mean_latency_ms > \
        by_protocol["master"].mean_latency_ms
